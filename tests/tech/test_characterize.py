"""Unit tests for the cell characterization engine."""

import pytest

from repro.device.technology import soi_low_vt, soias_technology
from repro.errors import CharacterizationError
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def characterizer(tech):
    return CellCharacterizer(tech)


@pytest.fixture(scope="module")
def cells():
    return standard_cells()


class TestDrive:
    def test_pull_up_weaker_than_pull_down_for_inverter(
        self, characterizer, cells
    ):
        inv = cells["INV"]
        down = characterizer.pull_down_current(inv, 1.0)
        up = characterizer.pull_up_current(inv, 1.0)
        # P/N width ratio 2 does not fully compensate the mobility
        # ratio 0.45 used by the technology factories.
        assert up < down

    def test_drive_rises_with_vdd(self, characterizer, cells):
        inv = cells["INV"]
        currents = [
            characterizer.pull_down_current(inv, 0.4 + 0.2 * i)
            for i in range(8)
        ]
        assert currents == sorted(currents)

    def test_vt_shift_changes_drive(self, characterizer, cells):
        inv = cells["INV"]
        faster = characterizer.pull_down_current(inv, 1.0, vt_shift=-0.1)
        slower = characterizer.pull_down_current(inv, 1.0, vt_shift=0.1)
        assert faster > characterizer.pull_down_current(inv, 1.0) > slower


class TestDelay:
    def test_delay_positive_and_falls_with_vdd(self, characterizer, cells):
        inv = cells["INV"]
        load = 10e-15
        delays = [
            characterizer.propagation_delay(inv, 0.5 + 0.25 * i, load)
            for i in range(7)
        ]
        assert all(d > 0.0 for d in delays)
        assert delays == sorted(delays, reverse=True)

    def test_delay_rises_with_load(self, characterizer, cells):
        inv = cells["INV"]
        assert characterizer.propagation_delay(
            inv, 1.0, 50e-15
        ) > characterizer.propagation_delay(inv, 1.0, 5e-15)

    def test_subthreshold_operation_is_slow_but_finite(
        self, characterizer, cells
    ):
        inv = cells["INV"]
        # V_DD below V_T = 0.184 V: the device runs on subthreshold
        # current only.
        sub = characterizer.propagation_delay(inv, 0.15, 1e-15)
        normal = characterizer.propagation_delay(inv, 1.0, 1e-15)
        assert sub > 10.0 * normal

    def test_lower_vt_shortens_delay(self, characterizer, cells):
        inv = cells["INV"]
        fast = characterizer.propagation_delay(inv, 0.6, 5e-15, vt_shift=-0.1)
        slow = characterizer.propagation_delay(inv, 0.6, 5e-15, vt_shift=0.1)
        assert fast < slow

    def test_fanout_delay_grows_with_fanout(self, characterizer, cells):
        inv = cells["INV"]
        fo1 = characterizer.fanout_delay(inv, 1.0, fanout=1)
        fo4 = characterizer.fanout_delay(inv, 1.0, fanout=4)
        assert fo4 > 2.0 * fo1

    def test_negative_load_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError, match="load"):
            characterizer.propagation_delay(cells["INV"], 1.0, -1e-15)

    def test_bad_fanout_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError, match="fanout"):
            characterizer.fanout_delay(cells["INV"], 1.0, fanout=0)

    def test_nonpositive_vdd_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError, match="vdd"):
            characterizer.propagation_delay(cells["INV"], 0.0, 1e-15)


class TestEnergy:
    def test_energy_scales_with_vdd_squared(self, characterizer, cells):
        inv = cells["INV"]
        # Fix the load well above the (voltage-dependent) self cap to
        # expose the V^2 law.
        load = 1e-12
        e1 = characterizer.energy_per_transition(inv, 1.0, load)
        e2 = characterizer.energy_per_transition(inv, 2.0, load)
        assert e2 / e1 == pytest.approx(4.0, rel=0.05)

    def test_energy_includes_self_capacitance(self, characterizer, cells):
        inv = cells["INV"]
        assert characterizer.energy_per_transition(inv, 1.0, 0.0) > 0.0


class TestShortCircuit:
    def test_zero_when_rails_cannot_overlap(self, cells):
        tech = soi_low_vt(vt0=0.3)
        characterizer = CellCharacterizer(tech)
        # V_DD < V_Tn + V_Tp = 0.6 V: no short-circuit path.
        energy = characterizer.short_circuit_energy(
            cells["INV"], 0.55, 10e-15, 100e-12
        )
        assert energy == 0.0

    def test_grows_with_transition_time(self, characterizer, cells):
        slow = characterizer.short_circuit_energy(
            cells["INV"], 1.0, 10e-15, 1e-9
        )
        fast = characterizer.short_circuit_energy(
            cells["INV"], 1.0, 10e-15, 1e-10
        )
        assert slow == pytest.approx(10.0 * fast)

    def test_small_fraction_of_switching_energy(self, characterizer, cells):
        # Paper: with matched rise/fall times short-circuit stays
        # below ~10 % of the switching component.
        inv = cells["INV"]
        vdd, load = 1.0, 10e-15
        switching = characterizer.energy_per_transition(inv, vdd, load)
        transition = characterizer.propagation_delay(inv, vdd, load)
        sc = characterizer.short_circuit_energy(inv, vdd, load, transition)
        assert sc < 0.1 * switching


class TestLeakage:
    def test_leakage_positive(self, characterizer, cells):
        assert characterizer.leakage_current(cells["INV"], 1.0) > 0.0

    def test_stacked_cells_leak_less_per_network(self, characterizer, cells):
        # NAND2 pull-down is a 2-stack of double-width devices; with
        # output high it still leaks less than two INV pull-downs.
        inv_leak = characterizer.leakage_current(
            cells["INV"], 1.0, output_high_probability=1.0
        )
        nand_leak = characterizer.leakage_current(
            cells["NAND2"], 1.0, output_high_probability=1.0
        )
        assert nand_leak < 2.0 * inv_leak

    def test_vt_shift_suppresses_leakage_exponentially(
        self, characterizer, cells
    ):
        inv = cells["INV"]
        active = characterizer.leakage_current(inv, 1.0, vt_shift=0.0)
        standby = characterizer.leakage_current(inv, 1.0, vt_shift=0.264)
        # 264 mV at 66 mV/dec = 4 decades.
        assert active / standby == pytest.approx(1e4, rel=0.35)

    def test_invalid_probability_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError, match="probability"):
            characterizer.leakage_current(
                cells["INV"], 1.0, output_high_probability=-0.1
            )


class TestCharacterizeRecord:
    def test_record_fields_consistent(self, characterizer, cells):
        inv = cells["INV"]
        record = characterizer.characterize(inv, 1.2, load_f=8e-15)
        assert record.cell_name == "INV"
        assert record.vdd == 1.2
        assert record.delay_s == pytest.approx(
            characterizer.propagation_delay(inv, 1.2, 8e-15)
        )
        assert record.leakage_power_w == pytest.approx(
            record.leakage_current_a * 1.2
        )

    def test_soias_standby_vs_active_characterization(self, cells):
        tech = soias_technology()
        characterizer = CellCharacterizer(tech)
        inv = cells["INV"]
        active_shift = tech.back_gate.vt_shift_at(3.0)
        active = characterizer.characterize(inv, 1.0, vt_shift=active_shift)
        standby = characterizer.characterize(inv, 1.0, vt_shift=0.0)
        assert active.delay_s < standby.delay_s
        assert active.leakage_current_a > standby.leakage_current_a
