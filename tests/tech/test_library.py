"""Unit tests for the characterized cell library and its JSON format."""

import pytest

from repro.device.technology import soi_low_vt
from repro.errors import LibraryError
from repro.tech.library import CellLibrary


@pytest.fixture(scope="module")
def library():
    return CellLibrary.characterized(
        soi_low_vt(),
        vdd_grid=[0.6, 1.0, 1.5, 2.0],
        vt_shift_grid=[-0.1, 0.0, 0.2],
        load_f=10e-15,
    )


class TestConstruction:
    def test_catalog_defaults_to_standard_cells(self):
        lib = CellLibrary(soi_low_vt())
        assert "NAND2" in lib.cells

    def test_cell_lookup_by_name(self, library):
        assert library.cell("XOR2").name == "XOR2"

    def test_unknown_cell_reports_catalog(self, library):
        with pytest.raises(LibraryError, match="INV"):
            library.cell("FLUXCAP")

    def test_lookup_without_table_fails(self):
        lib = CellLibrary(soi_low_vt())
        with pytest.raises(LibraryError, match="corner table"):
            lib.lookup("INV", 1.0)

    def test_empty_grid_rejected(self):
        lib = CellLibrary(soi_low_vt())
        with pytest.raises(LibraryError):
            lib.build_corner_table([], [0.0])


class TestInterpolation:
    def test_grid_points_are_exact(self, library):
        direct = library.characterizer.characterize(
            library.cell("INV"), 1.0, load_f=10e-15, vt_shift=0.0
        )
        looked_up = library.lookup("INV", 1.0, 0.0)
        assert looked_up.delay_s == pytest.approx(direct.delay_s, rel=1e-9)
        assert looked_up.leakage_current_a == pytest.approx(
            direct.leakage_current_a, rel=1e-9
        )

    def test_interpolated_point_close_to_direct(self, library):
        direct = library.characterizer.characterize(
            library.cell("NAND2"), 1.2, load_f=10e-15, vt_shift=0.05
        )
        looked_up = library.lookup("NAND2", 1.2, 0.05)
        assert looked_up.delay_s == pytest.approx(direct.delay_s, rel=0.15)
        # Leakage interpolates in log space, so even the exponential
        # axis stays within a factor ~1.5.
        ratio = looked_up.leakage_current_a / direct.leakage_current_a
        assert 0.5 < ratio < 2.0

    def test_extrapolation_refused(self, library):
        with pytest.raises(LibraryError, match="extrapolation"):
            library.lookup("INV", 3.0)
        with pytest.raises(LibraryError, match="extrapolation"):
            library.lookup("INV", 1.0, vt_shift=0.5)

    def test_single_point_axis(self):
        lib = CellLibrary.characterized(
            soi_low_vt(), vdd_grid=[1.0], vt_shift_grid=[0.0]
        )
        assert lib.lookup("INV", 1.0, 0.0).delay_s > 0.0
        with pytest.raises(LibraryError):
            lib.lookup("INV", 1.1, 0.0)

    def test_interpolation_monotone_between_corners(self, library):
        d1 = library.lookup("INV", 0.8).delay_s
        d2 = library.lookup("INV", 0.9).delay_s
        d3 = library.lookup("INV", 1.0).delay_s
        assert d1 > d2 > d3


class TestSerialization:
    def test_round_trip_preserves_lookup(self, library, tmp_path):
        path = tmp_path / "lib.json"
        library.save(str(path))
        loaded = CellLibrary.load(str(path))
        original = library.lookup("XOR2", 1.25, 0.1)
        recovered = loaded.lookup("XOR2", 1.25, 0.1)
        assert recovered.delay_s == pytest.approx(original.delay_s)
        assert recovered.energy_per_transition_j == pytest.approx(
            original.energy_per_transition_j
        )
        assert recovered.leakage_current_a == pytest.approx(
            original.leakage_current_a
        )

    def test_round_trip_preserves_cells(self, library):
        loaded = CellLibrary.from_json(library.to_json())
        for name, cell in library.cells.items():
            assert loaded.cells[name].truth_table == cell.truth_table

    def test_loaded_library_has_no_characterizer(self, library):
        loaded = CellLibrary.from_json(library.to_json())
        with pytest.raises(LibraryError, match="lookup"):
            _ = loaded.characterizer

    def test_serializing_untabled_library_fails(self):
        lib = CellLibrary(soi_low_vt())
        with pytest.raises(LibraryError, match="corner table"):
            lib.to_json()

    def test_malformed_json_rejected(self):
        with pytest.raises(LibraryError, match="malformed"):
            CellLibrary.from_json("{not json")

    def test_wrong_format_rejected(self):
        with pytest.raises(LibraryError, match="format"):
            CellLibrary.from_json('{"format": "something-else"}')
