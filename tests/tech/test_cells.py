"""Unit tests for cell templates and register styles."""

import pytest

from repro.device.technology import soi_low_vt
from repro.errors import NetlistError
from repro.tech.cells import (
    Cell,
    RegisterStyle,
    register_styles,
    standard_cells,
)


@pytest.fixture(scope="module")
def cells():
    return standard_cells()


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


class TestCatalog:
    def test_expected_cells_present(self, cells):
        for name in [
            "INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3",
            "AND2", "OR2", "XOR2", "XNOR2", "AOI21", "OAI21", "MUX2",
        ]:
            assert name in cells

    def test_inverter_truth_table(self, cells):
        inv = cells["INV"]
        assert inv.evaluate([0]) == 1
        assert inv.evaluate([1]) == 0

    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
    )
    def test_nand2(self, cells, a, b, expected):
        assert cells["NAND2"].evaluate([a, b]) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
    )
    def test_xor2(self, cells, a, b, expected):
        assert cells["XOR2"].evaluate([a, b]) == expected

    @pytest.mark.parametrize(
        "a,b,sel,expected",
        [
            (0, 0, 0, 0), (1, 0, 0, 1), (0, 1, 0, 0), (1, 1, 0, 1),
            (0, 0, 1, 0), (1, 0, 1, 0), (0, 1, 1, 1), (1, 1, 1, 1),
        ],
    )
    def test_mux2_selects(self, cells, a, b, sel, expected):
        assert cells["MUX2"].evaluate([a, b, sel]) == expected

    def test_aoi21(self, cells):
        aoi = cells["AOI21"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    expected = 0 if ((a and b) or c) else 1
                    assert aoi.evaluate([a, b, c]) == expected

    def test_oai21(self, cells):
        oai = cells["OAI21"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    expected = 0 if ((a or b) and c) else 1
                    assert oai.evaluate([a, b, c]) == expected

    def test_stack_depths_match_logic(self, cells):
        assert cells["NAND2"].nmos_stack_depth == 2
        assert cells["NAND2"].pmos_stack_depth == 1
        assert cells["NOR2"].nmos_stack_depth == 1
        assert cells["NOR2"].pmos_stack_depth == 2


class TestThreeValuedLogic:
    def test_controlling_value_resolves_unknown(self, cells):
        assert cells["NAND2"].evaluate([0, None]) == 1
        assert cells["NOR2"].evaluate([1, None]) == 0
        assert cells["AND2"].evaluate([None, 0]) == 0

    def test_noncontrolling_unknown_stays_unknown(self, cells):
        assert cells["NAND2"].evaluate([1, None]) is None
        assert cells["XOR2"].evaluate([0, None]) is None
        assert cells["INV"].evaluate([None]) is None

    def test_mux_with_unknown_select_but_equal_data(self, cells):
        # If both data inputs agree the select doesn't matter.
        assert cells["MUX2"].evaluate([1, 1, None]) == 1
        assert cells["MUX2"].evaluate([0, 0, None]) == 0
        assert cells["MUX2"].evaluate([0, 1, None]) is None

    def test_wrong_arity_rejected(self, cells):
        with pytest.raises(NetlistError, match="expected 2"):
            cells["NAND2"].evaluate([1])

    def test_non_binary_value_rejected(self, cells):
        with pytest.raises(NetlistError, match="0/1"):
            cells["INV"].evaluate([2])


class TestCellValidation:
    def test_truth_table_length_checked(self):
        with pytest.raises(NetlistError, match="truth table"):
            Cell(
                name="BAD",
                n_inputs=2,
                truth_table=(0, 1),
                nmos_path_widths_um=(1.0,),
                pmos_path_widths_um=(1.0,),
                nmos_count=1,
                pmos_count=1,
                nmos_drains_on_output=1,
                pmos_drains_on_output=1,
                input_nmos_width_um=1.0,
                input_pmos_width_um=1.0,
            )

    def test_truth_table_values_checked(self):
        with pytest.raises(NetlistError, match="0/1"):
            Cell(
                name="BAD",
                n_inputs=1,
                truth_table=(0, 2),
                nmos_path_widths_um=(1.0,),
                pmos_path_widths_um=(1.0,),
                nmos_count=1,
                pmos_count=1,
                nmos_drains_on_output=1,
                pmos_drains_on_output=1,
                input_nmos_width_um=1.0,
                input_pmos_width_um=1.0,
            )


class TestElectricalStructure:
    def test_input_capacitance_positive_and_voltage_dependent(
        self, cells, tech
    ):
        inv = cells["INV"]
        low = inv.input_capacitance(tech, 0.8)
        high = inv.input_capacitance(tech, 2.0)
        assert 0.0 < low < high

    def test_bigger_cells_present_more_capacitance(self, cells, tech):
        assert cells["NAND2"].input_capacitance(tech, 1.0) > cells[
            "INV"
        ].input_capacitance(tech, 1.0)

    def test_series_equivalent_width(self, cells):
        inv = cells["INV"]
        assert inv.series_equivalent_width([4.0, 4.0]) == pytest.approx(2.0)
        assert inv.series_equivalent_width([6.0]) == pytest.approx(6.0)

    def test_output_capacitance_positive(self, cells, tech):
        for cell in cells.values():
            assert cell.output_capacitance(tech, 1.0) > 0.0


class TestRegisterStyles:
    def test_three_styles(self):
        styles = register_styles()
        assert set(styles) == {"C2MOS", "TSPC", "LCLR"}

    def test_fig1_ordering_by_device_count(self):
        styles = register_styles()
        assert (
            styles["C2MOS"].device_count
            > styles["TSPC"].device_count
            > styles["LCLR"].device_count
        )

    def test_switched_capacitance_ordering(self, tech):
        # Fig. 1: C2MOS > TSPC > LCLR at every supply.
        styles = register_styles()
        for vdd in (1.0, 2.0, 3.0):
            values = [
                styles[name].switched_capacitance(tech, vdd)
                for name in ("C2MOS", "TSPC", "LCLR")
            ]
            assert values[0] > values[1] > values[2]

    def test_switched_capacitance_rises_with_vdd(self, tech):
        # Fig. 1: non-linear C means C_sw grows with V_DD.
        style = register_styles()["C2MOS"]
        sweep = [
            style.switched_capacitance(tech, 1.0 + 0.25 * i)
            for i in range(9)
        ]
        assert sweep == sorted(sweep)

    def test_data_activity_scales_only_data_component(self, tech):
        style = register_styles()["TSPC"]
        idle = style.switched_capacitance(tech, 1.5, data_activity=0.0)
        busy = style.switched_capacitance(tech, 1.5, data_activity=1.0)
        assert 0.0 < idle < busy  # clock still burns when data is idle

    def test_invalid_activity_rejected(self, tech):
        with pytest.raises(NetlistError, match="data_activity"):
            register_styles()["TSPC"].switched_capacitance(
                tech, 1.0, data_activity=1.5
            )

    def test_invalid_internal_activity_rejected(self):
        with pytest.raises(NetlistError, match="internal_activity"):
            RegisterStyle(
                name="BAD",
                nmos_count=4,
                pmos_count=4,
                nmos_width_um=2.0,
                pmos_width_um=4.0,
                clock_device_count=2,
                internal_activity=0.0,
                wire_length_um=10.0,
            )
