"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.switchsim.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.schedule(30, "c", 1)
        queue.schedule(10, "a", 1)
        queue.schedule(20, "b", 0)
        order = [queue.pop().net for _ in range(3)]
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_pop_in_schedule_order(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.schedule(10, "y", 0)
        assert queue.pop().net == "x"
        assert queue.pop().net == "y"

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1, "x", 1)


class TestInertialSuperseding:
    def test_new_event_replaces_pending(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.schedule(5, "x", 0)  # supersedes
        event = queue.pop()
        assert (event.time_fs, event.value) == (5, 0)
        assert queue.pop() is None  # old event lazily dropped

    def test_pending_value_tracks_latest(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        assert queue.pending_value("x") == 1
        queue.schedule(20, "x", 0)
        assert queue.pending_value("x") == 0

    def test_cancel_removes_pending(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.cancel("x")
        assert not queue.has_pending("x")
        assert queue.pop() is None

    def test_has_pending_cleared_after_pop(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.pop()
        assert not queue.has_pending("x")

    def test_independent_nets_unaffected(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.schedule(15, "y", 1)
        queue.cancel("x")
        event = queue.pop()
        assert event.net == "y"


class TestPeek:
    def test_peek_skips_dead_events(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.schedule(20, "y", 1)
        queue.cancel("x")
        assert queue.peek_time() == 20

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None

    def test_len_counts_heap_entries(self):
        queue = EventQueue()
        queue.schedule(10, "x", 1)
        queue.schedule(20, "x", 0)
        assert len(queue) == 2  # includes the superseded entry
