"""Unit tests for stimulus generators."""

import pytest

from repro.errors import StimulusError
from repro.switchsim.stimulus import (
    counting_bus_vectors,
    gray_code_bus_vectors,
    random_bus_vectors,
    vectors_from_values,
)


def pack(vector, prefix, width):
    return sum(vector[f"{prefix}[{i}]"] << i for i in range(width))


class TestVectorsFromValues:
    def test_expands_buses(self):
        vectors = vectors_from_values(
            {"a": 4, "b": 4}, [{"a": 5, "b": 10}, {"a": 15, "b": 0}]
        )
        assert pack(vectors[0], "a", 4) == 5
        assert pack(vectors[0], "b", 4) == 10
        assert pack(vectors[1], "a", 4) == 15

    def test_scalars_included(self):
        vectors = vectors_from_values(
            {"a": 2}, [{"a": 1}], scalars={"cin": 1}
        )
        assert vectors[0]["cin"] == 1

    def test_missing_bus_rejected(self):
        with pytest.raises(StimulusError, match="missing"):
            vectors_from_values({"a": 4, "b": 4}, [{"a": 1}])

    def test_overflow_rejected(self):
        with pytest.raises(StimulusError, match="fit"):
            vectors_from_values({"a": 2}, [{"a": 4}])


class TestRandomVectors:
    def test_reproducible_by_seed(self):
        one = random_bus_vectors({"a": 8}, 20, seed=42)
        two = random_bus_vectors({"a": 8}, 20, seed=42)
        assert one == two

    def test_different_seeds_differ(self):
        assert random_bus_vectors({"a": 8}, 20, seed=1) != random_bus_vectors(
            {"a": 8}, 20, seed=2
        )

    def test_bias_respected(self):
        ones = random_bus_vectors({"a": 8}, 200, seed=0, one_probability=0.9)
        density = sum(
            pack(v, "a", 8).bit_count() for v in ones
        ) / (200 * 8)
        assert density > 0.8

    def test_all_zero_bias(self):
        vectors = random_bus_vectors(
            {"a": 8}, 10, seed=0, one_probability=0.0
        )
        assert all(pack(v, "a", 8) == 0 for v in vectors)

    def test_count_validated(self):
        with pytest.raises(StimulusError):
            random_bus_vectors({"a": 8}, 0)

    def test_probability_validated(self):
        with pytest.raises(StimulusError):
            random_bus_vectors({"a": 8}, 5, one_probability=1.5)


class TestCountingVectors:
    def test_counts_from_start(self):
        vectors = counting_bus_vectors("b", 8, 5, start=250)
        values = [pack(v, "b", 8) for v in vectors]
        assert values == [250, 251, 252, 253, 254]

    def test_wraps_modulo_width(self):
        vectors = counting_bus_vectors("b", 4, 4, start=14)
        values = [pack(v, "b", 4) for v in vectors]
        assert values == [14, 15, 0, 1]

    def test_fixed_bus_held(self):
        vectors = counting_bus_vectors(
            "b", 8, 10, fixed_buses={"a": 85}, fixed_widths={"a": 8}
        )
        assert all(pack(v, "a", 8) == 85 for v in vectors)

    def test_fixed_maps_must_match(self):
        with pytest.raises(StimulusError, match="same buses"):
            counting_bus_vectors(
                "b", 8, 5, fixed_buses={"a": 1}, fixed_widths={}
            )


class TestGrayCodeVectors:
    def test_single_bit_flips(self):
        vectors = gray_code_bus_vectors("a", 8, 100)
        for previous, current in zip(vectors, vectors[1:]):
            flips = sum(
                previous[net] != current[net] for net in previous
            )
            assert flips == 1

    def test_covers_all_codes(self):
        vectors = gray_code_bus_vectors("a", 4, 16)
        codes = {pack(v, "a", 4) for v in vectors}
        assert codes == set(range(16))

    def test_fixed_buses_supported(self):
        vectors = gray_code_bus_vectors(
            "a", 4, 8, fixed_buses={"b": 3}, fixed_widths={"b": 4}
        )
        assert all(pack(v, "b", 4) == 3 for v in vectors)
