"""Unit tests for activity reports and the Fig. 8-9 observables."""

import pytest

from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.errors import ProfileError
from repro.switchsim.activity import ActivityReport
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import counting_bus_vectors, random_bus_vectors


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def adder():
    return ripple_carry_adder(8)


@pytest.fixture(scope="module")
def random_report(tech, adder):
    vectors = random_bus_vectors({"a": 8, "b": 8}, 200, seed=11)
    return SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)


@pytest.fixture(scope="module")
def correlated_report(tech, adder):
    vectors = counting_bus_vectors(
        "b", 8, 200, fixed_buses={"a": 85}, fixed_widths={"a": 8}
    )
    return SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)


class TestPerNetStatistics:
    def test_alpha_counts_rising_only(self, random_report):
        net = random_report.internal_nets()[0]
        assert random_report.alpha(net) == (
            random_report.rising[net] / random_report.cycles
        )

    def test_transition_probability_counts_both_edges(self, random_report):
        net = random_report.internal_nets()[0]
        expected = (
            random_report.rising[net] + random_report.falling[net]
        ) / random_report.cycles
        assert random_report.transition_probability(net) == expected

    def test_unknown_net_rejected(self, random_report):
        with pytest.raises(ProfileError, match="ghost"):
            random_report.alpha("ghost")

    def test_internal_nets_exclude_inputs(self, random_report, adder):
        internal = random_report.internal_nets()
        assert not set(internal) & set(adder.primary_inputs)

    def test_primary_inputs_near_half_activity(self, random_report):
        # Uniform random bits flip ~half the time.
        probabilities = [
            random_report.transition_probability(net)
            for net in random_report.primary_inputs
        ]
        mean = sum(probabilities) / len(probabilities)
        assert mean == pytest.approx(0.5, abs=0.1)


class TestFig8Fig9Shape:
    def test_correlated_activity_much_lower(
        self, random_report, correlated_report
    ):
        # Paper Fig. 9 vs Fig. 8: correlated inputs cut activity hard.
        assert (
            correlated_report.mean_activity()
            < 0.5 * random_report.mean_activity()
        )

    def test_glitching_pushes_some_nodes_above_one(self, random_report):
        # Static CMOS ripple adders show transition probability > 1 on
        # high-order sum nodes (the glitch tail of Fig. 8).
        tail = [
            net
            for net in random_report.internal_nets()
            if random_report.transition_probability(net) > 1.0
        ]
        assert tail

    def test_histogram_mass_shifts_left_when_correlated(
        self, random_report, correlated_report
    ):
        edges, random_counts = random_report.histogram(bins=10)
        _, correlated_counts = correlated_report.histogram(
            bins=10, max_probability=edges[-1]
        )
        low_random = sum(random_counts[:3]) / sum(random_counts)
        low_correlated = sum(correlated_counts[:3]) / sum(correlated_counts)
        assert low_correlated > low_random

    def test_histogram_bins_cover_all_nets(self, random_report):
        _, counts = random_report.histogram(bins=15)
        assert sum(counts) == len(random_report.internal_nets())

    def test_histogram_validation(self, random_report):
        with pytest.raises(ProfileError):
            random_report.histogram(bins=0)


class TestEnergyCoupling:
    def test_switched_capacitance_positive(self, random_report, adder, tech):
        assert random_report.switched_capacitance(adder, tech, 1.0) > 0.0

    def test_energy_scales_as_v_squared_plus_nonlinearity(
        self, random_report, adder, tech
    ):
        low = random_report.switching_energy_per_cycle(adder, tech, 1.0)
        high = random_report.switching_energy_per_cycle(adder, tech, 2.0)
        # At least quadratic; the Fig. 1 capacitance growth adds more.
        assert high > 4.0 * low

    def test_correlated_inputs_use_less_energy(
        self, random_report, correlated_report, adder, tech
    ):
        random_energy = random_report.switching_energy_per_cycle(
            adder, tech, 1.0
        )
        correlated_energy = correlated_report.switching_energy_per_cycle(
            adder, tech, 1.0
        )
        assert correlated_energy < random_energy

    def test_wrong_netlist_rejected(self, random_report, tech):
        other = ripple_carry_adder(4)
        with pytest.raises(ProfileError, match="report is for"):
            random_report.switched_capacitance(other, tech, 1.0)


class TestSerialization:
    def test_json_round_trip(self, random_report):
        recovered = ActivityReport.from_json(random_report.to_json())
        assert recovered.netlist_name == random_report.netlist_name
        assert recovered.cycles == random_report.cycles
        assert recovered.rising == random_report.rising
        assert recovered.falling == random_report.falling
        assert recovered.primary_inputs == random_report.primary_inputs

    def test_round_trip_preserves_statistics(self, random_report, adder, tech):
        recovered = ActivityReport.from_json(random_report.to_json())
        assert recovered.mean_activity() == pytest.approx(
            random_report.mean_activity()
        )
        assert recovered.switched_capacitance(
            adder, tech, 1.0
        ) == pytest.approx(
            random_report.switched_capacitance(adder, tech, 1.0)
        )

    def test_malformed_json_rejected(self):
        with pytest.raises(ProfileError, match="malformed"):
            ActivityReport.from_json("{broken")

    def test_wrong_format_rejected(self):
        with pytest.raises(ProfileError, match="format"):
            ActivityReport.from_json('{"format": "nope"}')


class TestMerge:
    def test_merge_adds_counts_and_cycles(self, tech, adder):
        vectors_a = random_bus_vectors({"a": 8, "b": 8}, 20, seed=0)
        vectors_b = random_bus_vectors({"a": 8, "b": 8}, 30, seed=1)
        report_a = SwitchLevelSimulator(adder, tech, 1.0).run_vectors(
            vectors_a
        )
        report_b = SwitchLevelSimulator(adder, tech, 1.0).run_vectors(
            vectors_b
        )
        merged = report_a.merged_with(report_b)
        assert merged.cycles == report_a.cycles + report_b.cycles
        net = merged.internal_nets()[0]
        assert merged.rising[net] == (
            report_a.rising[net] + report_b.rising[net]
        )

    def test_merge_different_netlists_rejected(self, random_report, tech):
        other_netlist = ripple_carry_adder(4)
        vectors = random_bus_vectors({"a": 4, "b": 4}, 10, seed=0)
        other = SwitchLevelSimulator(other_netlist, tech, 1.0).run_vectors(
            vectors
        )
        with pytest.raises(ProfileError, match="different"):
            random_report.merged_with(other)

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ProfileError):
            ActivityReport(
                netlist_name="x",
                cycles=0,
                rising={},
                falling={},
                primary_inputs=(),
                constants=(),
            )
