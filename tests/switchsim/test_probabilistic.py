"""Tests for the probabilistic activity estimator, incl. vs simulation."""

import pytest

from repro.circuits.builders import (
    equality_comparator,
    ripple_carry_adder,
    ring_oscillator,
)
from repro.circuits.netlist import Netlist
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError, ProfileError
from repro.switchsim.probabilistic import ProbabilisticActivityEstimator
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors
from repro.tech.cells import standard_cells


@pytest.fixture
def cells():
    return standard_cells()


class TestGatePropagation:
    def test_inverter_complements(self, cells):
        netlist = Netlist("inv")
        netlist.add_input("a")
        netlist.add_gate(cells["INV"], ["a"], "y")
        activity = ProbabilisticActivityEstimator(netlist).estimate(0.3)
        assert activity.signal_probability("y") == pytest.approx(0.7)

    def test_and_multiplies(self, cells):
        netlist = Netlist("and")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate(cells["AND2"], ["a", "b"], "y")
        activity = ProbabilisticActivityEstimator(netlist).estimate(
            {"a": 0.5, "b": 0.25}
        )
        assert activity.signal_probability("y") == pytest.approx(0.125)

    def test_xor_formula(self, cells):
        netlist = Netlist("xor")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate(cells["XOR2"], ["a", "b"], "y")
        activity = ProbabilisticActivityEstimator(netlist).estimate(
            {"a": 0.3, "b": 0.6}
        )
        expected = 0.3 * 0.4 + 0.7 * 0.6
        assert activity.signal_probability("y") == pytest.approx(expected)

    def test_constants_propagate(self, cells):
        netlist = Netlist("const")
        netlist.add_input("a")
        netlist.add_constant("one", 1)
        netlist.add_gate(cells["AND2"], ["a", "one"], "y")
        activity = ProbabilisticActivityEstimator(netlist).estimate(0.4)
        assert activity.signal_probability("y") == pytest.approx(0.4)
        assert activity.alpha("one") == 0.0

    def test_alpha_peaks_at_half(self, cells):
        netlist = Netlist("inv")
        netlist.add_input("a")
        netlist.add_gate(cells["INV"], ["a"], "y")
        estimator = ProbabilisticActivityEstimator(netlist)
        mid = estimator.estimate(0.5).alpha("y")
        skew = estimator.estimate(0.9).alpha("y")
        assert mid == pytest.approx(0.25)
        assert skew < mid


class TestValidation:
    def test_cyclic_netlist_rejected(self):
        with pytest.raises(NetlistError, match="cycle"):
            ProbabilisticActivityEstimator(ring_oscillator(3))

    def test_bad_probability_rejected(self, cells):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate(cells["INV"], ["a"], "y")
        estimator = ProbabilisticActivityEstimator(netlist)
        with pytest.raises(ProfileError, match="\\[0, 1\\]"):
            estimator.estimate({"a": 1.5})

    def test_non_input_probability_rejected(self, cells):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate(cells["INV"], ["a"], "y")
        with pytest.raises(ProfileError, match="non-input"):
            ProbabilisticActivityEstimator(netlist).estimate({"y": 0.5})

    def test_unknown_net_query_rejected(self, cells):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate(cells["INV"], ["a"], "y")
        activity = ProbabilisticActivityEstimator(netlist).estimate()
        with pytest.raises(ProfileError):
            activity.alpha("ghost")


class TestAgainstSimulation:
    """The estimator's documented accuracy envelope."""

    def test_tree_circuit_matches_simulation_closely(self):
        # The comparator's XNOR/AND tree has no reconvergent fanout
        # from the inputs, so independence holds and the only gap is
        # glitching (small here).
        comparator = equality_comparator(6)
        estimate = ProbabilisticActivityEstimator(comparator).estimate(0.5)
        vectors = random_bus_vectors({"a": 6, "b": 6}, 2500, seed=5)
        simulated = SwitchLevelSimulator(
            comparator, soi_low_vt(), 1.0
        ).run_vectors(vectors)
        for net in ("x[0]", "x[3]"):
            assert estimate.transition_probability(net) == pytest.approx(
                simulated.transition_probability(net), rel=0.12
            )

    def test_adder_estimate_is_a_zero_delay_lower_bound(self):
        # The ripple adder glitches, so simulation exceeds the
        # zero-delay estimate on average.
        adder = ripple_carry_adder(8)
        estimate = ProbabilisticActivityEstimator(adder).estimate(0.5)
        vectors = random_bus_vectors({"a": 8, "b": 8}, 400, seed=6)
        simulated = SwitchLevelSimulator(
            adder, soi_low_vt(), 1.0
        ).run_vectors(vectors)
        assert simulated.mean_activity() > 0.8 * estimate.mean_activity()

    def test_estimated_switched_capacitance_same_scale_as_simulated(self):
        adder = ripple_carry_adder(8)
        technology = soi_low_vt()
        estimate = ProbabilisticActivityEstimator(adder).estimate(0.5)
        vectors = random_bus_vectors({"a": 8, "b": 8}, 400, seed=7)
        simulated = SwitchLevelSimulator(
            adder, technology, 1.0
        ).run_vectors(vectors)
        c_est = estimate.switched_capacitance(adder, technology, 1.0)
        c_sim = simulated.switched_capacitance(adder, technology, 1.0)
        assert 0.4 < c_est / c_sim < 1.6

    def test_biased_inputs_reduce_activity_in_both(self):
        adder = ripple_carry_adder(6)
        estimator = ProbabilisticActivityEstimator(adder)
        uniform = estimator.estimate(0.5).mean_activity()
        sparse = estimator.estimate(0.1).mean_activity()
        assert sparse < uniform

    def test_wrong_netlist_rejected(self):
        adder = ripple_carry_adder(4)
        other = ripple_carry_adder(6)
        activity = ProbabilisticActivityEstimator(adder).estimate()
        with pytest.raises(ProfileError, match="activity is for"):
            activity.switched_capacitance(other, soi_low_vt(), 1.0)
