"""Unit and integration tests for the event-driven simulator."""

import pytest

from repro.circuits.builders import ring_oscillator, ripple_carry_adder
from repro.circuits.netlist import Netlist
from repro.device.technology import soi_low_vt
from repro.errors import SimulationError
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors
from repro.tech.cells import standard_cells


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture
def cells():
    return standard_cells()


def bus(prefix, width, value):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


class TestBasicPropagation:
    def test_inverter_chain_settles(self, tech, cells):
        netlist = Netlist("chain")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "mid")
        netlist.add_gate(cells["INV"], ["mid"], "out")
        sim = SwitchLevelSimulator(netlist, tech, 1.0)
        sim.initialize({"in": 0})
        assert sim.state == {"in": 0, "mid": 1, "out": 0}
        sim.apply({"in": 1})
        assert sim.state == {"in": 1, "mid": 0, "out": 1}

    def test_time_advances_with_each_gate(self, tech, cells):
        netlist = Netlist("chain")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "mid")
        netlist.add_gate(cells["INV"], ["mid"], "out")
        sim = SwitchLevelSimulator(netlist, tech, 1.0)
        sim.initialize({"in": 0})
        sim.apply({"in": 1})
        assert sim.now_fs > 0

    def test_unknown_input_name_rejected(self, tech, cells):
        netlist = Netlist("x")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "out")
        sim = SwitchLevelSimulator(netlist, tech, 1.0)
        with pytest.raises(SimulationError, match="primary input"):
            sim.initialize({"bogus": 1})

    def test_non_binary_input_rejected(self, tech, cells):
        netlist = Netlist("x")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "out")
        sim = SwitchLevelSimulator(netlist, tech, 1.0)
        with pytest.raises(SimulationError, match="0/1"):
            sim.initialize({"in": 7})

    def test_unchanged_input_is_free(self, tech, cells):
        netlist = Netlist("x")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "out")
        sim = SwitchLevelSimulator(netlist, tech, 1.0)
        sim.initialize({"in": 1})
        assert sim.apply({"in": 1}) == 0


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_adder_matches_zero_delay_model(self, tech, seed):
        adder = ripple_carry_adder(8)
        sim = SwitchLevelSimulator(adder, tech, 1.0)
        vectors = random_bus_vectors({"a": 8, "b": 8}, 50, seed=seed)
        sim.run_vectors(vectors)
        reference = adder.evaluate(vectors[-1])
        for net, value in reference.items():
            assert sim.state[net] == value, net

    def test_final_value_independent_of_order(self, tech):
        # Applying A then B ends in the same state as applying B alone.
        adder = ripple_carry_adder(4)
        first = {**bus("a", 4, 5), **bus("b", 4, 9)}
        second = {**bus("a", 4, 12), **bus("b", 4, 3)}
        sim1 = SwitchLevelSimulator(adder, tech, 1.0)
        sim1.initialize(first)
        sim1.apply(second)
        sim2 = SwitchLevelSimulator(adder, tech, 1.0)
        sim2.initialize(second)
        assert sim1.state == sim2.state


class TestGlitches:
    def test_ripple_adder_produces_extra_transitions(self, tech):
        # A carry ripple after sum bits settle re-toggles the sum XORs:
        # more events than the functional Hamming distance.
        adder = ripple_carry_adder(8)
        sim = SwitchLevelSimulator(adder, tech, 1.0)
        sim.initialize({**bus("a", 8, 0), **bus("b", 8, 0)})
        before = dict(sim.state)
        sim.reset_activity()
        # 255 + 1: every sum XOR goes high on its fast input, then the
        # rippling carry pulls it back low — a pulse on every bit.
        sim.apply({**bus("a", 8, 255), **bus("b", 8, 1)})
        after = dict(sim.state)
        functional_changes = sum(
            1 for net in after if after[net] != before[net]
        )
        report = sim.activity_report()
        assert report.total_transitions() > functional_changes

    def test_glitch_counts_depend_on_corner(self, tech):
        # The simulator is deterministic per corner.
        adder = ripple_carry_adder(8)
        vectors = random_bus_vectors({"a": 8, "b": 8}, 30, seed=3)
        first = SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)
        second = SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)
        assert first.rising == second.rising
        assert first.falling == second.falling


class TestRingOscillator:
    def test_free_run_oscillates(self, tech):
        ring = ring_oscillator(5)
        sim = SwitchLevelSimulator(ring, tech, 1.0)
        stage_fs = next(iter(sim._delay_fs.values()))
        duration = 20 * 5 * stage_fs  # ten full periods
        report = sim.run_free(preset={"ro[0]": 0}, duration_fs=duration)
        transitions = report.transitions("ro[0]")
        assert transitions == pytest.approx(20, abs=3)

    def test_period_matches_stage_delay(self, tech):
        stages = 7
        ring = ring_oscillator(stages)
        sim = SwitchLevelSimulator(ring, tech, 1.0)
        stage_fs = next(iter(sim._delay_fs.values()))
        cycles = 8
        duration = 2 * stages * stage_fs * cycles
        report = sim.run_free(preset={"ro[0]": 0}, duration_fs=duration)
        measured_period_fs = duration / (report.transitions("ro[0]") / 2.0)
        assert measured_period_fs == pytest.approx(
            2 * stages * stage_fs, rel=0.15
        )

    def test_event_budget_guards_oscillation(self, tech):
        ring = ring_oscillator(3)
        sim = SwitchLevelSimulator(ring, tech, 1.0)
        with pytest.raises(SimulationError, match="budget"):
            sim.run_free(
                preset={"ro[0]": 0}, duration_fs=10**12, max_events=100
            )


class TestActivityAccumulation:
    def test_run_vectors_counts_cycles(self, tech):
        adder = ripple_carry_adder(4)
        vectors = random_bus_vectors({"a": 4, "b": 4}, 21, seed=0)
        report = SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)
        assert report.cycles == 20  # first vector initializes

    def test_empty_stimulus_rejected(self, tech):
        adder = ripple_carry_adder(4)
        sim = SwitchLevelSimulator(adder, tech, 1.0)
        with pytest.raises(SimulationError, match="at least one"):
            sim.run_vectors([])

    def test_reset_activity_zeroes(self, tech):
        adder = ripple_carry_adder(4)
        sim = SwitchLevelSimulator(adder, tech, 1.0)
        vectors = random_bus_vectors({"a": 4, "b": 4}, 10, seed=0)
        sim.run_vectors(vectors)
        sim.reset_activity()
        assert sim.activity_report().total_transitions() == 0
