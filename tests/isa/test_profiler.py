"""Unit tests for fga/bga extraction (the ATOM analogue)."""

import pytest

from repro.errors import ProfileError
from repro.isa.assembler import assemble
from repro.isa.instructions import FUNCTIONAL_UNITS, instruction_set
from repro.isa.machine import Machine
from repro.isa.profiler import (
    AtomProfiler,
    profile_from_counts,
    profile_program,
)


class TestUnitAnnotations:
    def test_paper_assumption_loads_use_adder(self):
        specs = instruction_set()
        assert "adder" in specs["LW"].units
        assert "adder" in specs["SW"].units

    def test_paper_assumption_compares_use_adder(self):
        specs = instruction_set()
        for branch in ("BEQ", "BNE", "BLT", "BGEU"):
            assert "adder" in specs[branch].units

    def test_shift_and_multiply_units(self):
        specs = instruction_set()
        assert specs["SLLI"].units == frozenset({"shifter"})
        assert specs["MUL"].units == frozenset({"multiplier"})

    def test_halt_uses_nothing(self):
        assert instruction_set()["HALT"].units == frozenset()


class TestCounting:
    def test_fga_is_use_fraction(self):
        # 4 adds + 1 halt: adder fga = 4/5.
        program = assemble("ADD r1, r0, r0\n" * 4 + "HALT")
        profile = profile_program(program)
        assert profile.fga("adder") == pytest.approx(4.0 / 5.0)

    def test_bga_counts_runs_not_uses(self):
        # add add add (one run) shift add add (second run) halt
        program = assemble(
            """
            ADD r1, r0, r0
            ADD r1, r0, r0
            ADD r1, r0, r0
            SLLI r2, r1, 1
            ADD r1, r0, r0
            ADD r1, r0, r0
            HALT
            """
        )
        profile = profile_program(program)
        adder = profile.stats("adder")
        assert adder.uses == 5
        assert adder.runs == 2
        assert adder.bga == pytest.approx(2.0 / 7.0)

    def test_sequential_uses_give_minimal_bga(self):
        # The paper: "if all the uses of a block were sequential, bga
        # would be 1/total".
        program = assemble("ADD r1, r0, r0\n" * 9 + "HALT")
        profile = profile_program(program)
        assert profile.bga("adder") == pytest.approx(1.0 / 10.0)

    def test_bga_never_exceeds_fga(self):
        program = assemble(
            """
            LI r1, 50
            loop: SLLI r2, r1, 1
            MUL r3, r2, r2
            ADDI r1, r1, -1
            BNE r1, zero, loop
            HALT
            """
        )
        profile = profile_program(program)
        for unit in ("adder", "shifter", "multiplier"):
            assert profile.bga(unit) <= profile.fga(unit)

    def test_mean_run_length(self):
        program = assemble("ADD r1, r0, r0\n" * 6 + "HALT")
        stats = profile_program(program).stats("adder")
        assert stats.mean_run_length == pytest.approx(6.0)

    def test_unused_unit_zero(self):
        profile = profile_program(assemble("NOP\nHALT"))
        assert profile.fga("multiplier") == 0.0
        assert profile.stats("multiplier").mean_run_length == 0.0

    def test_unknown_unit_rejected(self):
        profile = profile_program(assemble("HALT"))
        with pytest.raises(ProfileError, match="unknown unit"):
            profile.fga("fpu")

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfileError, match="no instructions"):
            AtomProfiler().profile("empty")


class TestDutyCycleScaling:
    def test_scaling_divides_activities(self):
        program = assemble("ADD r1, r0, r0\n" * 4 + "HALT")
        profile = profile_program(program)
        scaled = profile.scaled_by_duty_cycle(0.2)
        assert scaled.fga("adder") == pytest.approx(
            profile.fga("adder") * 0.2, rel=1e-6
        )
        assert scaled.bga("adder") == pytest.approx(
            profile.bga("adder") * 0.2, rel=1e-6
        )

    def test_uses_and_runs_preserved(self):
        program = assemble("ADD r1, r0, r0\nHALT")
        scaled = profile_program(program).scaled_by_duty_cycle(0.5)
        assert scaled.stats("adder").uses == 1

    def test_full_duty_is_identity(self):
        program = assemble("ADD r1, r0, r0\nHALT")
        profile = profile_program(program)
        same = profile.scaled_by_duty_cycle(1.0)
        assert same.fga("adder") == pytest.approx(profile.fga("adder"))

    @pytest.mark.parametrize("duty", [0.0, -0.5, 1.5])
    def test_invalid_duty_rejected(self, duty):
        profile = profile_program(assemble("HALT\n"))
        with pytest.raises(ProfileError, match="duty"):
            profile.scaled_by_duty_cycle(duty)


class TestProfileProgramHelper:
    def test_accepts_preconfigured_machine(self):
        program = assemble("ADD r1, r0, r0\nHALT")
        machine = Machine(program)
        extra = []
        machine.add_hook(lambda pc, instr: extra.append(pc))
        profile = profile_program(program, machine=machine)
        assert profile.total_instructions == 2
        assert len(extra) == 2


MIXED_SOURCE = """
LI r1, 20
loop: SLLI r2, r1, 1
MUL r3, r2, r2
SW r3, 0(r0)
LW r4, 0(r0)
ADDI r1, r1, -1
BNE r1, zero, loop
HALT
"""


class TestProfilingEngines:
    def test_engines_produce_identical_profiles(self):
        fast = profile_program(assemble(MIXED_SOURCE), engine="fast")
        ref = profile_program(assemble(MIXED_SOURCE), engine="reference")
        assert fast.total_instructions == ref.total_instructions
        for unit in FUNCTIONAL_UNITS:
            assert fast.stats(unit).uses == ref.stats(unit).uses
            assert fast.stats(unit).runs == ref.stats(unit).runs
            assert fast.fga(unit) == ref.fga(unit)
            assert fast.bga(unit) == ref.bga(unit)

    def test_fast_is_the_default_engine(self):
        program = assemble(MIXED_SOURCE)
        default = profile_program(program)
        fast = profile_program(assemble(MIXED_SOURCE), engine="fast")
        assert default.units == fast.units

    def test_unknown_engine_rejected(self):
        with pytest.raises(ProfileError, match="unknown profiling engine"):
            profile_program(assemble("HALT"), engine="turbo")

    def test_hooked_machine_takes_reference_path(self):
        # A user hook must keep observing every retired instruction
        # even when the fast engine is requested.
        program = assemble(MIXED_SOURCE)
        machine = Machine(program)
        seen = []
        machine.add_hook(lambda pc, instr: seen.append(pc))
        profile = profile_program(program, machine=machine, engine="fast")
        assert len(seen) == profile.total_instructions

    def test_profile_from_counts_matches_hook_profiler(self):
        machine = Machine(assemble(MIXED_SOURCE))
        counts = machine.run_counted()
        from_counts = profile_from_counts("mixed", counts)

        hooked = Machine(assemble(MIXED_SOURCE))
        profiler = AtomProfiler()
        hooked.add_hook(profiler)
        hooked.run()
        from_hook = profiler.profile("mixed")
        assert from_counts.units == from_hook.units
        assert from_counts.total_instructions == from_hook.total_instructions

    def test_profile_from_counts_rejects_empty_run(self):
        machine = Machine(assemble("HALT"))
        counts = machine.run_counted()
        empty = type(counts)(
            classes=counts.classes,
            transitions=counts.transitions,
            retired=0,
            final_class=0,
        )
        with pytest.raises(ProfileError, match="no instructions"):
            profile_from_counts("empty", empty)
