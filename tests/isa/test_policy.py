"""Unit tests for gating policies (hysteresis on V_T control)."""

import pytest

from repro.errors import ProfileError
from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.policy import UnitTraceRecorder, apply_hysteresis


def record(source):
    machine = Machine(assemble(source))
    recorder = UnitTraceRecorder()
    machine.add_hook(recorder)
    machine.run()
    return recorder


@pytest.fixture
def bursty_recorder():
    # adder x3, logic x2 (idle gap of 2 for the adder), adder x2, halt.
    return record(
        """
        ADD r1, r0, r0
        ADD r1, r0, r0
        ADD r1, r0, r0
        XOR r2, r1, r1
        XOR r2, r1, r1
        ADD r1, r0, r0
        ADD r1, r0, r0
        HALT
        """
    )


class TestTraceRecorder:
    def test_rle_trace(self, bursty_recorder):
        trace = bursty_recorder.trace("adder")
        assert trace == [(True, 3), (False, 2), (True, 2), (False, 1)]

    def test_total_counts_all_instructions(self, bursty_recorder):
        assert bursty_recorder.total == 8

    def test_unknown_unit_rejected(self, bursty_recorder):
        with pytest.raises(ProfileError, match="not recorded"):
            bursty_recorder.trace("fpu")


class TestHysteresis:
    def test_zero_threshold_matches_plain_bga(self, bursty_recorder):
        stats = bursty_recorder.gated_stats("adder", idle_threshold=0)
        assert stats.uses == 5
        assert stats.powered_cycles == 5
        assert stats.toggles == 2
        assert stats.bga == pytest.approx(2.0 / 8.0)

    def test_threshold_bridges_short_gaps(self, bursty_recorder):
        # Gap of 2 <= threshold 2: unit stays powered through it.
        stats = bursty_recorder.gated_stats("adder", idle_threshold=2)
        assert stats.toggles == 1
        assert stats.powered_cycles == 5 + 2 + 1  # gap + final tail
        # Wait: final idle run is length 1 <= threshold, also powered.
        assert stats.bga == pytest.approx(1.0 / 8.0)

    def test_threshold_one_does_not_bridge_gap_of_two(
        self, bursty_recorder
    ):
        stats = bursty_recorder.gated_stats("adder", idle_threshold=1)
        assert stats.toggles == 2
        # One cycle of each idle window is spent powered.
        assert stats.powered_cycles == 5 + 1 + 1

    def test_powered_fraction_monotone_in_threshold(self, bursty_recorder):
        fractions = [
            bursty_recorder.gated_stats("adder", k).powered_fraction
            for k in range(0, 5)
        ]
        assert fractions == sorted(fractions)

    def test_bga_monotone_nonincreasing_in_threshold(self, bursty_recorder):
        toggles = [
            bursty_recorder.gated_stats("adder", k).bga
            for k in range(0, 5)
        ]
        assert toggles == sorted(toggles, reverse=True)

    def test_use_fraction_invariant(self, bursty_recorder):
        for k in (0, 1, 3):
            stats = bursty_recorder.gated_stats("adder", k)
            assert stats.use_fraction == pytest.approx(5.0 / 8.0)

    def test_never_used_unit(self, bursty_recorder):
        stats = bursty_recorder.gated_stats("multiplier", idle_threshold=4)
        assert stats.uses == 0
        assert stats.toggles == 0
        assert stats.powered_fraction == 0.0

    def test_validation(self, bursty_recorder):
        with pytest.raises(ProfileError):
            bursty_recorder.gated_stats("adder", idle_threshold=-1)
        with pytest.raises(ProfileError):
            apply_hysteresis([(True, 1)], "adder", 0, 0)
