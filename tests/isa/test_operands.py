"""Tests for operand-trace capture and trace-derived stimulus."""

import pytest

from repro.errors import ProfileError
from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.operands import OperandTraceRecorder
from repro.isa.workloads import idea


def traced_run(source):
    machine = Machine(assemble(source))
    recorder = OperandTraceRecorder(machine)
    machine.run()
    return recorder


class TestCapture:
    def test_rrr_operands_recorded(self):
        recorder = traced_run(
            "LI r1, 5\nLI r2, 9\nADD r3, r1, r2\nHALT"
        )
        assert recorder.operands["adder"][-1] == (5, 9)

    def test_rri_immediate_recorded(self):
        recorder = traced_run("LI r1, 7\nSLLI r2, r1, 3\nHALT")
        assert recorder.operands["shifter"] == [(7, 3)]

    def test_memory_address_operands(self):
        recorder = traced_run("LI r1, 100\nLW r2, 4(r1)\nHALT")
        assert recorder.operands["adder"][-1] == (100, 4)

    def test_branch_compare_operands(self):
        recorder = traced_run(
            "LI r1, 3\nLI r2, 3\nBEQ r1, r2, done\ndone: HALT"
        )
        assert recorder.operands["adder"][-1] == (3, 3)

    def test_multiplier_operands(self):
        recorder = traced_run("LI r1, 6\nLI r2, 7\nMUL r3, r1, r2\nHALT")
        assert recorder.operands["multiplier"] == [(6, 7)]

    def test_limit_respected(self):
        program = assemble("loop: ADD r1, r1, r1\nJ loop")
        machine = Machine(program)
        recorder = OperandTraceRecorder(machine, limit_per_unit=5)
        with pytest.raises(Exception):
            machine.run(max_instructions=100)
        assert recorder.pair_count("adder") == 5

    def test_limit_validated(self):
        machine = Machine(assemble("HALT"))
        with pytest.raises(ProfileError):
            OperandTraceRecorder(machine, limit_per_unit=0)


class TestStimulus:
    @pytest.fixture(scope="class")
    def idea_recorder(self):
        machine = Machine(idea.build_program(idea.random_blocks(4)))
        recorder = OperandTraceRecorder(machine)
        machine.run()
        return recorder

    def test_vectors_match_pairs(self, idea_recorder):
        vectors = idea_recorder.stimulus(
            "multiplier", {"a": 8, "b": 8}, limit=5
        )
        assert len(vectors) == 5
        pair = idea_recorder.operands["multiplier"][0]
        packed_a = sum(vectors[0][f"a[{i}]"] << i for i in range(8))
        assert packed_a == pair[0] & 0xFF

    def test_bus_shapes(self, idea_recorder):
        vectors = idea_recorder.stimulus("adder", {"a": 8, "b": 8}, limit=3)
        for vector in vectors:
            assert set(vector) == {
                f"{p}[{i}]" for p in ("a", "b") for i in range(8)
            }

    def test_vectors_drive_a_real_netlist(self, idea_recorder):
        from repro.circuits.builders import array_multiplier
        from repro.device.technology import soi_low_vt
        from repro.switchsim import SwitchLevelSimulator

        vectors = idea_recorder.stimulus(
            "multiplier", {"a": 8, "b": 8}, limit=40
        )
        report = SwitchLevelSimulator(
            array_multiplier(8), soi_low_vt(), 1.0
        ).run_vectors(vectors)
        assert report.mean_activity() > 0.0

    def test_traced_activity_below_random(self, idea_recorder):
        # The headline: real operand streams are far more correlated
        # than uniform random stimulus.
        from repro.circuits.builders import array_multiplier
        from repro.device.technology import soi_low_vt
        from repro.switchsim import SwitchLevelSimulator, random_bus_vectors

        netlist = array_multiplier(8)
        technology = soi_low_vt()
        traced = SwitchLevelSimulator(
            netlist, technology, 1.0
        ).run_vectors(
            idea_recorder.stimulus("multiplier", {"a": 8, "b": 8}, limit=80)
        )
        random_report = SwitchLevelSimulator(
            netlist, technology, 1.0
        ).run_vectors(random_bus_vectors({"a": 8, "b": 8}, 80, seed=0))
        assert traced.mean_activity() < 0.6 * random_report.mean_activity()

    def test_unknown_unit_rejected(self, idea_recorder):
        with pytest.raises(ProfileError, match="not traced"):
            idea_recorder.stimulus("fpu", {"a": 8, "b": 8})

    def test_wrong_bus_count_rejected(self, idea_recorder):
        with pytest.raises(ProfileError, match="two buses"):
            idea_recorder.stimulus("adder", {"a": 8})

    def test_empty_trace_rejected(self):
        machine = Machine(assemble("HALT"))
        recorder = OperandTraceRecorder(machine)
        machine.run()
        with pytest.raises(ProfileError, match="no operands"):
            recorder.stimulus("multiplier", {"a": 8, "b": 8})
