"""Tests for the disassembler: round trips and listings."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_instruction, listing
from repro.isa.machine import Machine
from repro.isa.workloads import crc, idea, li_like


def round_trip(source, name="p"):
    original = assemble(source, name=name)
    recovered = assemble(disassemble(original), name=name)
    return original, recovered


class TestInstructionForms:
    def test_each_format_disassembles(self):
        program = assemble(
            """
            .data
            x: .word 7
            .text
            main: ADD r1, r2, r3
            ADDI r4, r5, -6
            LUI r7, 12
            LW r8, 2(r9)
            BEQ r1, r2, main
            JAL r0, main
            HALT
            """
        )
        text = disassemble(program)
        for token in ("ADD r1, r2, r3", "ADDI r4, r5, -6", "LUI r7, 12",
                      "LW r8, 2(r9)", "BEQ", "JAL", "HALT"):
            assert token in text

    def test_branch_targets_use_labels(self):
        program = assemble("loop: ADDI r1, r1, 1\nBNE r1, r0, loop\nHALT")
        text = disassemble(program)
        assert "loop" in text or "L0" in text

    def test_unknown_labels_fall_back_to_pc(self):
        program = assemble("BEQ r0, r0, 2\nNOP\nHALT")
        rendered = disassemble_instruction(
            program.instructions[0], {}
        )
        assert rendered.endswith(", 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "HALT",
            "LI r1, 70000\nSLLI r2, r1, 3\nHALT",
            """
            .data
            t: .word 1, 2, 3
            .text
            main: LA r1, t
            LW r2, 0(r1)
            MUL r3, r2, r2
            SW r3, 1(r1)
            HALT
            """,
        ],
    )
    def test_instruction_streams_identical(self, source):
        original, recovered = round_trip(source)
        assert len(original.instructions) == len(recovered.instructions)
        for a, b in zip(original.instructions, recovered.instructions):
            assert a.mnemonic == b.mnemonic
            assert a.operands == b.operands

    def test_data_segment_preserved(self):
        original, recovered = round_trip(
            ".data\nx: .word 5, 6\ny: .word 7\n.text\nHALT"
        )
        assert original.data == recovered.data

    @pytest.mark.parametrize(
        "program",
        [
            idea.build_program(idea.random_blocks(2)),
            li_like.build_program(8, 4),
            crc.build_program(4),
        ],
        ids=["idea", "li", "crc"],
    )
    def test_workloads_round_trip_and_run_identically(self, program):
        recovered = assemble(disassemble(program), name=program.name)
        m1, m2 = Machine(program), Machine(recovered)
        m1.run()
        m2.run()
        assert m1.instructions_retired == m2.instructions_retired
        assert m1.registers == m2.registers
        assert m1.memory == m2.memory


class TestListing:
    def test_listing_shows_units(self):
        program = assemble("MUL r1, r2, r3\nHALT")
        text = listing(program)
        assert "multiplier" in text
        assert "; -" in text  # HALT uses nothing

    def test_listing_numbers_every_instruction(self):
        program = assemble("NOP\nNOP\nHALT")
        lines = listing(program).strip().splitlines()
        assert len(lines) == 3
        assert lines[0].strip().startswith("0")
