"""Workload correctness (vs Python references) and profile shapes.

The profile-shape tests are the Table 1-3 acceptance criteria: each
workload's functional-unit mix must match its SPEC counterpart's
qualitative signature.
"""

import pytest

from repro.errors import AssemblyError
from repro.isa.machine import Machine
from repro.isa.profiler import profile_program
from repro.isa.workloads import (
    crc,
    espresso_like,
    fir,
    idea,
    li_like,
    matmul,
    sort,
)


def run(program):
    machine = Machine(program)
    machine.run()
    return machine


class TestIdeaReference:
    def test_published_test_vector(self):
        # The canonical IDEA vector: K = 0001..0008, PT = 0000 0001
        # 0002 0003 -> CT = 11FB ED2B 0198 6DE5.
        assert idea.encrypt_block((0, 1, 2, 3), (1, 2, 3, 4, 5, 6, 7, 8)) == (
            0x11FB, 0xED2B, 0x0198, 0x6DE5,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_encrypt_decrypt_round_trip(self, seed):
        for block in idea.random_blocks(8, seed=seed):
            assert idea.decrypt_block(idea.encrypt_block(block)) == block

    def test_mul_mod_group_properties(self):
        # 0 encodes 2^16; the group is Z*_65537.
        assert idea.mul_mod(1, 1) == 1
        assert idea.mul_mod(0, 1) == 0  # 65536 * 1 = 65536 -> encoded 0
        assert idea.mul_mod(0, 0) == 1  # (-1) * (-1) = 1 mod 65537
        assert idea.mul_mod(2, 32768) == 0  # 65536

    def test_key_schedule_length_and_first_words(self):
        subkeys = idea.key_schedule((1, 2, 3, 4, 5, 6, 7, 8))
        assert len(subkeys) == 52
        assert subkeys[:8] == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_key_schedule_rotation(self):
        # Ninth subkey comes from the 25-bit-rotated key.
        subkeys = idea.key_schedule((1, 2, 3, 4, 5, 6, 7, 8))
        key = 0
        for word in (1, 2, 3, 4, 5, 6, 7, 8):
            key = (key << 16) | word
        rotated = ((key << 25) | (key >> 103)) & ((1 << 128) - 1)
        assert subkeys[8] == (rotated >> 112) & 0xFFFF

    def test_bad_key_rejected(self):
        with pytest.raises(AssemblyError):
            idea.key_schedule((1, 2, 3))
        with pytest.raises(AssemblyError):
            idea.key_schedule((1, 2, 3, 4, 5, 6, 7, 1 << 17))


class TestIdeaAssembly:
    def test_assembly_matches_reference(self):
        blocks = idea.random_blocks(4, seed=9)
        program = idea.build_program(blocks)
        machine = run(program)
        assert idea.read_ciphertext(machine, program, 4) == [
            idea.encrypt_block(b) for b in blocks
        ]

    def test_assembly_handles_zero_words(self):
        # 0 encodes 2^16 in the multiply; exercise that path.
        blocks = [(0, 0, 0, 0), (0xFFFF, 0, 1, 0)]
        program = idea.build_program(blocks)
        machine = run(program)
        assert idea.read_ciphertext(machine, program, 2) == [
            idea.encrypt_block(b) for b in blocks
        ]

    def test_empty_blocks_rejected(self):
        with pytest.raises(AssemblyError):
            idea.source([])

    def test_bad_block_rejected(self):
        with pytest.raises(AssemblyError):
            idea.source([(1, 2, 3)])


class TestEspressoKernel:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_assembly_matches_reference(self, seed):
        n_cubes, n_vars = 32, 8
        cover = espresso_like.random_cover(n_cubes, n_vars, seed)
        program = espresso_like.build_program(n_cubes, n_vars, seed)
        machine = run(program)
        got_cover, got_literals = espresso_like.read_results(
            machine, program, n_cubes
        )
        ref_cover, ref_literals = espresso_like.reference_kernel(
            cover, n_vars
        )
        assert got_cover == ref_cover
        assert got_literals == ref_literals

    def test_containment_removes_specific_cubes(self):
        # A full don't-care cube contains everything.
        n_vars = 3
        dc = 0b111111
        cover = [dc, 0b111001, 0b011011]
        result, _ = espresso_like.reference_kernel(cover, n_vars)
        assert result == [dc, 0, 0]

    def test_distance_one_merge(self):
        # x1 and !x1 (other vars don't-care) merge into don't-care.
        n_vars = 2
        a = 0b11_10  # var0 = true, var1 = dc
        b = 0b11_01  # var0 = complement, var1 = dc
        result, _ = espresso_like.reference_kernel([a, b], n_vars)
        assert result == [0b11_11, 0]

    def test_duplicates_deduped(self):
        cover = [0b1110, 0b1110]
        result, _ = espresso_like.reference_kernel(cover, 2)
        assert result == [0b1110, 0]

    def test_cover_validation(self):
        with pytest.raises(AssemblyError):
            espresso_like.random_cover(1, 4)
        with pytest.raises(AssemblyError):
            espresso_like.random_cover(8, 20)


class TestLiKernel:
    @pytest.mark.parametrize("n,lookups", [(10, 5), (64, 40), (1, 1)])
    def test_assembly_matches_reference(self, n, lookups):
        program = li_like.build_program(n, lookups)
        machine = run(program)
        assert li_like.read_results(machine, program) == (
            li_like.reference_kernel(n, lookups)
        )

    def test_reference_sum(self):
        total, _ = li_like.reference_kernel(100, 1)
        assert total == 5050

    def test_parameters_validated(self):
        with pytest.raises(AssemblyError):
            li_like.source(0, 1)
        with pytest.raises(AssemblyError):
            li_like.source(1, 0)


class TestFirKernel:
    def test_assembly_matches_reference(self):
        program, samples, taps = fir.build_program(40, seed=5)
        machine = run(program)
        assert fir.read_outputs(machine, program, 40) == (
            fir.reference_filter(samples, taps)
        )

    def test_impulse_response_recovers_taps(self):
        taps = [3, 7, 11]
        outputs = fir.reference_filter([1, 0, 0, 0], taps)
        assert outputs == [3, 7, 11, 0]


class TestCrcKernel:
    def test_assembly_matches_reference(self):
        message = crc.random_message(12, seed=8)
        program = crc.build_program(12, seed=8)
        machine = run(program)
        assert crc.read_crc(machine, program) == crc.reference_crc(message)

    def test_known_value_of_zero_word(self):
        # CRC-32 of a single zero word: xor-in/out only path.
        value = crc.reference_crc([0])
        assert value == crc.reference_crc([0])  # deterministic
        assert value != 0

    def test_different_messages_differ(self):
        assert crc.reference_crc([1]) != crc.reference_crc([2])


class TestSortKernel:
    @pytest.mark.parametrize("count,seed", [(1, 0), (2, 1), (17, 2), (64, 3)])
    def test_assembly_sorts_correctly(self, count, seed):
        values = sort.random_values(count, seed)
        program = sort.build_program(count, seed)
        machine = run(program)
        assert sort.read_sorted(machine, program, count) == sorted(values)

    def test_duplicates_and_presorted_inputs(self):
        from repro.isa.assembler import assemble

        for values in ([5, 5, 5, 5], [1, 2, 3, 4, 5], [5, 4, 3, 2, 1]):
            program = assemble(sort.source(values), name="sort")
            machine = run(program)
            assert sort.read_sorted(
                machine, program, len(values)
            ) == sorted(values)

    def test_recursion_uses_the_stack(self):
        program = sort.build_program(32, seed=4)
        machine = Machine(program)
        machine.run()
        # Stack frames were written below STACK_TOP.
        touched = [
            address
            for address in machine.memory
            if program.labels["array"] + 32 <= address < sort.STACK_TOP
        ]
        assert touched

    def test_profile_is_add_and_memory_heavy(self):
        profile = profile_program(sort.build_program(48, seed=5))
        assert profile.fga("adder") > 0.6
        assert profile.fga("memory") > 0.15
        assert profile.fga("multiplier") == 0.0
        assert profile.fga("shifter") == 0.0

    def test_validation(self):
        with pytest.raises(AssemblyError):
            sort.source([])
        with pytest.raises(AssemblyError):
            sort.source([-1])
        with pytest.raises(AssemblyError):
            sort.random_values(0)


class TestMatmulKernel:
    @pytest.mark.parametrize("n,seed", [(4, 0), (8, 1)])
    def test_assembly_matches_reference(self, n, seed):
        a = matmul.random_matrix(n, seed)
        b = matmul.random_matrix(n, seed + 1)
        program = matmul.build_program(n, seed)
        machine = run(program)
        assert matmul.read_result(machine, program, n) == (
            matmul.reference_matmul(a, b, n)
        )

    def test_identity_matrix(self):
        from repro.isa.assembler import assemble

        n = 4
        identity = [
            1 if i == j else 0 for i in range(n) for j in range(n)
        ]
        other = matmul.random_matrix(n, seed=3)
        program = assemble(matmul.source(identity, other, n), name="mm")
        machine = run(program)
        assert matmul.read_result(machine, program, n) == other

    def test_multiplier_runs_of_four(self):
        profile = profile_program(matmul.build_program(8))
        stats = profile.stats("multiplier")
        assert stats.mean_run_length == pytest.approx(4.0)
        assert stats.bga == pytest.approx(stats.fga / 4.0)

    def test_clustered_multiplies_beat_idea_on_bga(self):
        # The run-length contrast: IDEA's multiplier toggles per use,
        # matmul's amortizes a power-up over four.
        matmul_profile = profile_program(matmul.build_program(8))
        idea_profile = profile_program(
            idea.build_program(idea.random_blocks(4))
        )
        matmul_ratio = matmul_profile.bga("multiplier") / (
            matmul_profile.fga("multiplier")
        )
        idea_ratio = idea_profile.bga("multiplier") / (
            idea_profile.fga("multiplier")
        )
        assert matmul_ratio < 0.5 * idea_ratio

    def test_size_validation(self):
        with pytest.raises(AssemblyError):
            matmul.source([1], [1], 1)
        with pytest.raises(AssemblyError):
            matmul.source([0] * 36, [0] * 36, 6)  # not a multiple of 4
        with pytest.raises(AssemblyError):
            matmul.reference_matmul([1, 2], [3, 4], 4)


class TestProfileShapes:
    """The Tables 1-3 acceptance criteria."""

    @pytest.fixture(scope="class")
    def profiles(self):
        return {
            "espresso": profile_program(espresso_like.build_program()),
            "li": profile_program(li_like.build_program()),
            "idea": profile_program(
                idea.build_program(idea.random_blocks(8))
            ),
        }

    def test_idea_is_the_multiplier_workload(self, profiles):
        idea_mult = profiles["idea"].fga("multiplier")
        assert idea_mult > 0.03
        assert profiles["espresso"].fga("multiplier") == 0.0
        assert profiles["li"].fga("multiplier") == 0.0

    def test_espresso_is_shift_heavy(self, profiles):
        assert profiles["espresso"].fga("shifter") > 0.05
        assert (
            profiles["espresso"].fga("shifter")
            > profiles["li"].fga("shifter")
        )

    def test_li_is_add_heavy_with_no_shifts(self, profiles):
        assert profiles["li"].fga("adder") > 0.5
        assert profiles["li"].fga("shifter") == 0.0

    def test_adder_bga_well_below_fga(self, profiles):
        # Adder uses cluster into long runs in all three workloads.
        for profile in profiles.values():
            adder = profile.stats("adder")
            assert adder.bga < 0.7 * adder.fga

    def test_bga_bounded_by_fga_everywhere(self, profiles):
        for profile in profiles.values():
            for unit in ("adder", "shifter", "multiplier", "logic"):
                assert profile.bga(unit) <= profile.fga(unit) + 1e-12
