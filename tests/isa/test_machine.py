"""Unit tests for the ISA interpreter."""

import pytest

from repro.errors import MachineError
from repro.isa.assembler import assemble
from repro.isa.machine import Machine


def run(source, max_instructions=100_000):
    machine = Machine(assemble(source))
    machine.run(max_instructions=max_instructions)
    return machine


class TestArithmetic:
    def test_add_sub(self):
        m = run("LI r1, 40\nLI r2, 2\nADD r3, r1, r2\nSUB r4, r1, r2\nHALT")
        assert m.read_register(3) == 42
        assert m.read_register(4) == 38

    def test_wraparound_32bit(self):
        m = run("LI r1, -1\nADDI r2, r1, 1\nHALT")
        assert m.read_register(1) == 0xFFFFFFFF
        assert m.read_register(2) == 0

    def test_r0_is_hardwired_zero(self):
        m = run("ADDI r0, r0, 5\nMOV r1, r0\nHALT")
        assert m.read_register(0) == 0
        assert m.read_register(1) == 0

    def test_slt_signed_vs_unsigned(self):
        m = run(
            """
            LI r1, -1
            LI r2, 1
            SLT r3, r1, r2      # -1 < 1 signed -> 1
            SLTU r4, r1, r2     # 0xFFFFFFFF < 1 unsigned -> 0
            HALT
            """
        )
        assert m.read_register(3) == 1
        assert m.read_register(4) == 0

    def test_mul_and_mulhu(self):
        m = run(
            """
            LI r1, 0x10000
            LI r2, 0x10000
            MUL r3, r1, r2      # low 32 bits of 2^32 = 0
            MULHU r4, r1, r2    # high 32 bits = 1
            HALT
            """
        )
        assert m.read_register(3) == 0
        assert m.read_register(4) == 1


class TestShifts:
    def test_logical_shifts(self):
        m = run("LI r1, 0x80\nSLLI r2, r1, 4\nSRLI r3, r1, 3\nHALT")
        assert m.read_register(2) == 0x800
        assert m.read_register(3) == 0x10

    def test_arithmetic_shift_sign_extends(self):
        m = run("LI r1, -8\nSRAI r2, r1, 1\nSRLI r3, r1, 1\nHALT")
        assert m.read_register(2) == 0xFFFFFFFC  # -4
        assert m.read_register(3) == 0x7FFFFFFC

    def test_register_shift_amount_masked(self):
        m = run("LI r1, 1\nLI r2, 33\nSLL r3, r1, r2\nHALT")
        assert m.read_register(3) == 2  # 33 & 31 == 1


class TestLogic:
    def test_bitwise_ops(self):
        m = run(
            """
            LI r1, 0xF0F0
            LI r2, 0x0FF0
            AND r3, r1, r2
            OR  r4, r1, r2
            XOR r5, r1, r2
            HALT
            """
        )
        assert m.read_register(3) == 0x00F0
        assert m.read_register(4) == 0xFFF0
        assert m.read_register(5) == 0xFF00

    def test_lui_ori_builds_32bit(self):
        m = run("LUI r1, 0xDEAD\nORI r1, r1, 0xBEEF\nHALT")
        assert m.read_register(1) == 0xDEADBEEF

    def test_xori_negative_is_full_not(self):
        m = run("LI r1, 0\nNOT r2, r1\nHALT")
        assert m.read_register(2) == 0xFFFFFFFF


class TestMemory:
    def test_load_store(self):
        m = run(
            """
            .data
            cell: .word 99
            .text
            LA r1, cell
            LW r2, 0(r1)
            ADDI r2, r2, 1
            SW r2, 0(r1)
            LW r3, 0(r1)
            HALT
            """
        )
        assert m.read_register(3) == 100

    def test_uninitialized_memory_reads_zero(self):
        m = run("LI r1, 5000\nLW r2, 0(r1)\nHALT")
        assert m.read_register(2) == 0

    def test_memory_footprint_guard(self):
        program = assemble(
            """
            LI r1, 0
            loop: SW r1, 0(r1)
            ADDI r1, r1, 1
            J loop
            """
        )
        machine = Machine(program, memory_limit_words=100)
        with pytest.raises(MachineError, match="footprint"):
            machine.run()


class TestControlFlow:
    def test_loop_terminates(self):
        m = run(
            """
            LI r1, 10
            LI r2, 0
            loop: ADD r2, r2, r1
            ADDI r1, r1, -1
            BNE r1, zero, loop
            HALT
            """
        )
        assert m.read_register(2) == 55

    def test_signed_branches(self):
        m = run(
            """
            LI r1, -5
            LI r2, 3
            LI r3, 0
            BLT r1, r2, taken
            LI r3, 99
            taken: HALT
            """
        )
        assert m.read_register(3) == 0

    def test_unsigned_branches(self):
        m = run(
            """
            LI r1, -1      # 0xFFFFFFFF
            LI r2, 1
            LI r3, 0
            BLTU r1, r2, taken   # not taken: 0xFFFFFFFF > 1 unsigned
            LI r3, 42
            taken: HALT
            """
        )
        assert m.read_register(3) == 42

    def test_call_and_return(self):
        m = run(
            """
            main: LI r1, 5
                  CALL double
                  MOV r3, r2
                  HALT
            double: ADD r2, r1, r1
                  RET
            """
        )
        assert m.read_register(3) == 10

    def test_jal_records_return_address(self):
        m = run("main: JAL r5, target\ntarget: HALT")
        assert m.read_register(5) == 1

    def test_pc_out_of_range_traps(self):
        program = assemble("NOP\nNOP")  # no HALT: runs off the end
        machine = Machine(program)
        with pytest.raises(MachineError, match="PC"):
            machine.run()

    def test_instruction_budget(self):
        program = assemble("loop: J loop")
        machine = Machine(program)
        with pytest.raises(MachineError, match="budget"):
            machine.run(max_instructions=1000)

    def test_step_after_halt_rejected(self):
        machine = Machine(assemble("HALT"))
        machine.run()
        with pytest.raises(MachineError, match="halted"):
            machine.step()


class TestInstrumentation:
    def test_hook_sees_every_retired_instruction(self):
        program = assemble("LI r1, 3\nloop: ADDI r1, r1, -1\nBNE r1, zero, loop\nHALT")
        machine = Machine(program)
        seen = []
        machine.add_hook(lambda pc, instr: seen.append(instr.mnemonic))
        machine.run()
        assert seen.count("ADDI") == 1 + 3  # LI expansion + 3 loop decrements
        assert seen.count("BNE") == 3
        assert seen[-1] == "HALT"

    def test_instructions_retired_counter(self):
        machine = Machine(assemble("NOP\nNOP\nHALT"))
        retired = machine.run()
        assert retired == 3
        assert machine.instructions_retired == 3


LOOP_SOURCE = """
LI r1, 10
LI r2, 0
loop: ADD r2, r2, r1
ADDI r1, r1, -1
BNE r1, zero, loop
SW r2, 0(r1)
HALT
"""


def _state(machine):
    return (
        machine.pc,
        machine.halted,
        machine.instructions_retired,
        list(machine.registers),
        dict(machine.memory),
    )


class TestDecodedEngine:
    def test_same_architectural_state_as_reference(self):
        reference = Machine(assemble(LOOP_SOURCE))
        reference.run()
        fast = Machine(assemble(LOOP_SOURCE))
        retired = fast.run_fast()
        assert retired == reference.instructions_retired
        assert _state(fast) == _state(reference)

    def test_decode_is_idempotent(self):
        machine = Machine(assemble(LOOP_SOURCE))
        machine.decode()
        decoded = machine._decoded
        machine.decode()
        assert machine._decoded is decoded

    def test_budget_error_matches_reference(self):
        reference = Machine(assemble("loop: J loop"))
        with pytest.raises(MachineError) as ref_err:
            reference.run(max_instructions=1000)
        fast = Machine(assemble("loop: J loop"))
        with pytest.raises(MachineError) as fast_err:
            fast.run_fast(max_instructions=1000)
        assert str(fast_err.value) == str(ref_err.value)
        assert _state(fast) == _state(reference)

    def test_budget_error_beyond_one_chunk(self):
        # The decoded loop checks the budget per chunk, not per step;
        # exhaustion past a chunk boundary must still be exact.
        fast = Machine(assemble("loop: J loop"))
        with pytest.raises(MachineError, match="budget 70000"):
            fast.run_fast(max_instructions=70_000)
        assert fast.instructions_retired == 70_000

    def test_pc_out_of_range_matches_reference(self):
        reference = Machine(assemble("NOP\nNOP"))
        with pytest.raises(MachineError) as ref_err:
            reference.run()
        fast = Machine(assemble("NOP\nNOP"))
        with pytest.raises(MachineError) as fast_err:
            fast.run_fast()
        assert str(fast_err.value) == str(ref_err.value)
        assert _state(fast) == _state(reference)

    def test_memory_footprint_error_matches_reference(self):
        source = "LI r1, 0\nloop: SW r1, 0(r1)\nADDI r1, r1, 1\nJ loop"
        reference = Machine(assemble(source), memory_limit_words=100)
        with pytest.raises(MachineError) as ref_err:
            reference.run()
        fast = Machine(assemble(source), memory_limit_words=100)
        with pytest.raises(MachineError) as fast_err:
            fast.run_fast()
        assert str(fast_err.value) == str(ref_err.value)
        assert _state(fast) == _state(reference)

    def test_hooks_fall_back_to_reference_path(self):
        machine = Machine(assemble(LOOP_SOURCE))
        seen = []
        machine.add_hook(lambda pc, instr: seen.append(instr.mnemonic))
        retired = machine.run_fast()
        assert len(seen) == retired
        assert seen[-1] == "HALT"

    def test_run_counted_rejects_hooks(self):
        machine = Machine(assemble(LOOP_SOURCE))
        machine.add_hook(lambda pc, instr: None)
        with pytest.raises(MachineError, match="hook"):
            machine.run_counted()

    def test_run_counted_counts_match_retirements(self):
        machine = Machine(assemble(LOOP_SOURCE))
        counts = machine.run_counted()
        assert counts.retired == machine.instructions_retired
        assert sum(counts.transitions) == counts.retired
        assert counts.classes[0] == frozenset()


class TestOriImmediateMasking:
    def test_ori_negative_immediate_sets_full_word(self):
        # Regression: ORI used to mask its immediate to 16 bits while
        # ANDI/XORI masked to 32; all three now mask to the full word.
        m = run("LI r1, 0\nORI r2, r1, -1\nHALT")
        assert m.read_register(2) == 0xFFFFFFFF

    def test_ori_large_immediate_both_paths(self):
        source = "LUI r1, 0x00F0\nORI r2, r1, -256\nHALT"
        reference = Machine(assemble(source))
        reference.run()
        fast = Machine(assemble(source))
        fast.run_fast()
        expected = (0x00F0 << 16) | (-256 & 0xFFFFFFFF)
        assert reference.read_register(2) == expected
        assert fast.read_register(2) == expected

    def test_andi_ori_xori_same_masking_rule(self):
        m = run(
            """
            LI r1, 0x0F0F
            ANDI r2, r1, -1
            ORI r3, r1, -1
            XORI r4, r1, -1
            HALT
            """
        )
        assert m.read_register(2) == 0x0F0F
        assert m.read_register(3) == 0xFFFFFFFF
        assert m.read_register(4) == 0xFFFFF0F0
