"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import DATA_BASE, assemble


class TestBasicAssembly:
    def test_minimal_program(self):
        program = assemble("HALT")
        assert program.size == 1
        assert program.instructions[0].mnemonic == "HALT"

    def test_labels_resolve_to_pcs(self):
        program = assemble(
            """
            main: ADDI r1, r0, 1
            loop: ADDI r1, r1, 1
                  BNE r1, r0, loop
                  HALT
            """
        )
        assert program.labels["main"] == 0
        assert program.labels["loop"] == 1
        branch = program.instructions[2]
        assert branch.operands[2] == 1

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(
            """
            # leading comment
            ADDI r1, r0, 5   # trailing comment
            ; semicolon comment
            HALT
            """
        )
        assert program.size == 2

    def test_register_aliases(self):
        program = assemble("ADDI sp, zero, 4\nJALR r0, ra, 0\nHALT")
        assert program.instructions[0].operands[:2] == (30, 0)
        assert program.instructions[1].operands[1] == 31

    def test_case_insensitive_mnemonics(self):
        program = assemble("addi r1, r0, 1\nhalt")
        assert program.instructions[0].mnemonic == "ADDI"

    def test_hex_immediates(self):
        program = assemble("ADDI r1, r0, 0x10\nHALT")
        assert program.instructions[0].operands[2] == 16

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError, match="no instructions"):
            assemble("# nothing here")


class TestDataSegment:
    def test_word_directive(self):
        program = assemble(
            """
            .data
            table: .word 10, 20, 0x1E
            .text
            HALT
            """
        )
        base = program.labels["table"]
        assert base == DATA_BASE
        assert [program.data[base + i] for i in range(3)] == [10, 20, 30]

    def test_space_directive_zero_fills(self):
        program = assemble(
            """
            .data
            buf: .space 4
            .text
            HALT
            """
        )
        base = program.labels["buf"]
        assert [program.data[base + i] for i in range(4)] == [0, 0, 0, 0]

    def test_consecutive_data_labels(self):
        program = assemble(
            """
            .data
            a: .word 1, 2
            b: .word 3
            .text
            HALT
            """
        )
        assert program.labels["b"] == program.labels["a"] + 2

    def test_negative_words_wrap(self):
        program = assemble(".data\nx: .word -1\n.text\nHALT")
        assert program.data[program.labels["x"]] == 0xFFFFFFFF

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblyError, match="instruction in .data"):
            assemble(".data\nADDI r1, r0, 1\n.text\nHALT")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError, match="directive"):
            assemble(".data\nx: .blob 3\n.text\nHALT")


class TestPseudoInstructions:
    def test_li_small_is_single_addi(self):
        program = assemble("LI r1, 100\nHALT")
        assert program.size == 2
        assert program.instructions[0].mnemonic == "ADDI"

    def test_li_large_expands_to_pair(self):
        program = assemble("LI r1, 0x12345\nHALT")
        assert program.size == 3
        assert program.instructions[0].mnemonic == "LUI"
        assert program.instructions[1].mnemonic == "ORI"

    def test_li_expansion_keeps_labels_consistent(self):
        program = assemble(
            """
            LI r1, 0x12345
            after: HALT
            """
        )
        assert program.labels["after"] == 2

    def test_la_always_pair(self):
        program = assemble(
            """
            .data
            x: .word 7
            .text
            LA r1, x
            HALT
            """
        )
        assert program.size == 3

    def test_mov_not_subi(self):
        program = assemble("MOV r1, r2\nNOT r3, r4\nSUBI r5, r6, 3\nHALT")
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics == ["ADDI", "XORI", "ADDI", "HALT"]
        assert program.instructions[1].operands[2] == -1
        assert program.instructions[2].operands[2] == -3

    def test_j_call_ret(self):
        program = assemble(
            """
            main: J end
            func: RET
            end:  CALL func
                  HALT
            """
        )
        j, ret, call, _ = program.instructions
        assert (j.mnemonic, j.operands[0]) == ("JAL", 0)
        assert ret.mnemonic == "JALR"
        assert (call.mnemonic, call.operands[0]) == ("JAL", 31)

    def test_bgt_ble_swap_operands(self):
        program = assemble(
            """
            loop: BGT r1, r2, loop
                  BLE r3, r4, loop
                  HALT
            """
        )
        bgt, ble, _ = program.instructions
        assert bgt.mnemonic == "BLT" and bgt.operands[:2] == (2, 1)
        assert ble.mnemonic == "BGE" and ble.operands[:2] == (4, 3)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("FROB r1, r2, r3")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("ADDI r99, r0, 1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="usage"):
            assemble("ADD r1, r2")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError, match="16-bit"):
            assemble("ADDI r1, r0, 70000")

    def test_unknown_branch_label(self):
        with pytest.raises(AssemblyError, match="unknown label"):
            assemble("BEQ r1, r2, nowhere\nHALT")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: NOP\nx: HALT")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="imm\\(rs\\)"):
            assemble("LW r1, r2\nHALT")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("NOP\nNOP\nFROB r1\nHALT")

    def test_entry_of_missing_label(self):
        program = assemble("HALT")
        assert program.entry() == 0  # "main" defaults to 0
        with pytest.raises(AssemblyError, match="no label"):
            program.entry("elsewhere")
