"""Fault-injection tests for the parallel sweep engine.

These tests kill real worker processes mid-run (SIGKILL, the same
signal the OOM killer sends) and assert the retry policy documented in
:mod:`repro.analysis.parallel`: completed chunks are never recomputed,
lost chunks are re-dispatched, results stay bit-identical to the
serial path, and user-function exceptions propagate unchanged.
"""

import os
import signal
import time

import pytest

from repro import obs
from repro.analysis.parallel import map_grid, map_items
from repro.errors import AnalysisError

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="fault injection uses POSIX signals"
)


def _square(x):
    return x * x


def _log_and_square(task):
    """Append the item to a log file, then square it."""
    value, log_path = task
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value * value


class _KillWorkerOnce:
    """SIGKILL the hosting process the first time it sees ``victim``.

    A marker file records that the kill already happened so the
    retried chunk completes normally.  Module-level class: instances
    pickle into workers.
    """

    def __init__(self, marker_path, victim):
        self.marker_path = marker_path
        self.victim = victim

    def __call__(self, x):
        if x == self.victim and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as handle:
                handle.write("killed\n")
            os.kill(os.getpid(), signal.SIGKILL)
        return x * x


class _KillWorkerNTimes:
    """SIGKILL on ``victim`` until ``n_kills`` markers exist."""

    def __init__(self, marker_dir, victim, n_kills):
        self.marker_dir = marker_dir
        self.victim = victim
        self.n_kills = n_kills

    def __call__(self, x):
        if x == self.victim:
            done = len(os.listdir(self.marker_dir))
            if done < self.n_kills:
                path = os.path.join(self.marker_dir, f"kill-{done}")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write("killed\n")
                os.kill(os.getpid(), signal.SIGKILL)
        return x * x


class _LogThenMaybeKill(_KillWorkerOnce):
    """Log each execution to a file, killing once on the victim item."""

    def __call__(self, task):
        value, log_path = task
        if value == self.victim and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as handle:
                handle.write("killed\n")
            os.kill(os.getpid(), signal.SIGKILL)
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{value}\n")
        return value * value


class _KillGridCellOnce:
    """Two-argument variant of :class:`_KillWorkerOnce` for map_grid."""

    def __init__(self, marker_path, victim):
        self.marker_path = marker_path
        self.victim = victim

    def __call__(self, x, y):
        if (x, y) == self.victim and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w", encoding="utf-8") as handle:
                handle.write("killed\n")
            os.kill(os.getpid(), signal.SIGKILL)
        return 10.0 * x + y


class _RaiseOn:
    """Raise ``error`` when the item equals ``victim``."""

    def __init__(self, victim, error):
        self.victim = victim
        self.error = error

    def __call__(self, x):
        if x == self.victim:
            raise self.error
        return x * x


def _sleep_seconds(x):
    time.sleep(x)
    return x


class TestWorkerKillRecovery:
    def test_killed_worker_recovers_bit_identical(self, tmp_path):
        items = list(range(12))
        fn = _KillWorkerOnce(str(tmp_path / "killed"), victim=7)
        with obs.enabled_scope():
            results = map_items(
                fn, items, workers=2, chunksize=1, max_retries=2
            )
            counters = dict(obs.snapshot()["counters"])
        assert results == [x * x for x in items]
        assert counters["parallel.worker_failures"] >= 1
        assert counters["parallel.chunk_retries"] >= 1
        # Recovery used the pool, not the serial fallback.
        assert counters.get("parallel.fallbacks", 0) == 0
        # Every item's result was recorded exactly once.
        assert counters["parallel.items"] == len(items)

    def test_only_lost_chunks_rerun(self, tmp_path):
        log_path = str(tmp_path / "executions.log")
        marker = str(tmp_path / "killed")
        items = list(range(16))
        # Kill late so most chunks have already completed and been
        # recorded by the time the pool breaks.
        fn = _LogThenMaybeKill(marker, victim=items[-1])
        results = map_items(
            fn,
            [(value, log_path) for value in items],
            workers=2,
            chunksize=1,
            max_retries=2,
        )
        assert results == [x * x for x in items]
        with open(log_path, encoding="utf-8") as handle:
            executed = [int(line) for line in handle if line.strip()]
        # Every item ran at least once; only the chunks in flight when
        # the worker died may have run twice — a full restart would
        # re-execute everything.
        assert sorted(set(executed)) == items
        assert len(executed) < 2 * len(items) - 2

    def test_retries_exhausted_falls_back_to_serial(self, tmp_path):
        marker_dir = tmp_path / "kills"
        marker_dir.mkdir()
        items = list(range(8))
        # Dies on every pool attempt (initial + 2 retries); the serial
        # tail then runs in-process, where the kill budget is spent.
        fn = _KillWorkerNTimes(str(marker_dir), victim=3, n_kills=3)
        with obs.enabled_scope():
            results = map_items(
                fn, items, workers=2, chunksize=1, max_retries=2
            )
            counters = dict(obs.snapshot()["counters"])
        assert results == [x * x for x in items]
        assert counters["parallel.worker_failures"] == 3
        assert counters["parallel.fallbacks"] == 1
        assert counters["parallel.items"] == len(items)

    def test_map_grid_recovers_from_worker_kill(self, tmp_path):
        xs = [0.0, 1.0, 2.0]
        ys = [0.0, 1.0, 2.0, 3.0]
        fn = _KillGridCellOnce(str(tmp_path / "killed"), victim=(2.0, 3.0))
        parallel = map_grid(
            fn, xs, ys, workers=2, chunksize=1, max_retries=2
        )
        assert parallel == [[10.0 * x + y for y in ys] for x in xs]


class TestUserExceptionsPropagate:
    @pytest.mark.parametrize(
        "error",
        [OSError("fn-level OSError"), ValueError("fn-level ValueError")],
    )
    def test_parallel_path_propagates(self, error):
        fn = _RaiseOn(victim=5, error=error)
        with obs.enabled_scope():
            with pytest.raises(type(error), match="fn-level"):
                map_items(fn, list(range(8)), workers=2, chunksize=1)
            counters = dict(obs.snapshot()["counters"])
        # A user-function failure is not an infrastructure failure:
        # no fallback, no retry.
        assert counters.get("parallel.fallbacks", 0) == 0
        assert counters.get("parallel.chunk_retries", 0) == 0

    def test_serial_path_propagates(self):
        fn = _RaiseOn(victim=5, error=OSError("fn-level OSError"))
        with pytest.raises(OSError, match="fn-level"):
            map_items(fn, list(range(8)), workers=0)


class TestTimeout:
    def test_stuck_chunk_raises_timeout(self):
        from concurrent.futures import TimeoutError as FuturesTimeoutError

        with obs.enabled_scope():
            with pytest.raises(FuturesTimeoutError, match="chunk timeout"):
                map_items(
                    _sleep_seconds,
                    [30.0, 30.0],
                    workers=2,
                    chunksize=1,
                    timeout_s=0.5,
                )
            counters = dict(obs.snapshot()["counters"])
        assert counters["parallel.timeouts"] >= 1

    def test_timeout_validation(self):
        with pytest.raises(AnalysisError, match="timeout_s"):
            map_items(_square, [1, 2, 3], workers=2, timeout_s=0.0)

    def test_max_retries_validation(self):
        with pytest.raises(AnalysisError, match="max_retries"):
            map_items(_square, [1, 2, 3], workers=2, max_retries=-1)


class TestProgress:
    def test_progress_reaches_total_on_parallel_path(self):
        calls = []
        results = map_items(
            _square,
            list(range(10)),
            workers=2,
            chunksize=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert results == [x * x for x in range(10)]
        assert calls[-1] == (10, 10)
        assert [done for done, _ in calls] == sorted(
            done for done, _ in calls
        )

    def test_progress_on_serial_path(self):
        calls = []
        map_items(
            _square,
            [1, 2, 3],
            workers=0,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_survives_worker_kill(self, tmp_path):
        calls = []
        fn = _KillWorkerOnce(str(tmp_path / "killed"), victim=4)
        map_items(
            fn,
            list(range(8)),
            workers=2,
            chunksize=1,
            max_retries=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls[-1] == (8, 8)
