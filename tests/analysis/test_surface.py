"""Tests for the Fig. 3/4 (V_DD, V_T) energy surface."""

import pytest

from repro import obs
from repro.analysis.surface import _EnergyCell, energy_surface
from repro.core.flow import LowVoltageDesignFlow
from repro.device.technology import soi_low_vt
from repro.errors import AnalysisError

#: Small/fast surface knobs shared by every test: an 11-stage ring on
#: a grid where the 2e7 Hz clock leaves part of the plane infeasible.
STAGES = 11
CLOCK_HZ = 2e7
T_CYCLE = 1.0 / CLOCK_HZ


def _vts(n=5):
    return [0.1 + 0.4 * i / (n - 1) for i in range(n)]


def _vdds(n=5):
    return [0.2 + 1.3 * j / (n - 1) for j in range(n)]


def _surface(**kwargs):
    kwargs.setdefault("stages", STAGES)
    return energy_surface(
        soi_low_vt(), _vts(), _vdds(), T_CYCLE, **kwargs
    )


class TestSurfaceGrid:
    def test_axes_and_orientation(self):
        surface = _surface()
        assert surface.grid.x_name == "vt"
        assert surface.grid.y_name == "vdd"
        assert surface.grid.xs == tuple(_vts())
        assert surface.grid.ys == tuple(_vdds())
        assert len(surface.grid.zs) == len(_vts())

    def test_default_budget_is_ring_period(self):
        surface = _surface()
        assert surface.cycle_stages == 2 * STAGES
        assert surface.target_stage_delay_s == T_CYCLE / (2 * STAGES)

    def test_infeasible_cells_are_none(self):
        # High V_T at the lowest V_DD cannot meet a 2e7 Hz cycle.
        surface = _surface()
        defined = surface.grid.defined_cells()
        total = len(_vts()) * len(_vdds())
        assert 0 < defined < total

    def test_cells_match_direct_model(self):
        surface = _surface()
        cell = _EnergyCell(
            soi_low_vt(), STAGES, 1.0, T_CYCLE,
            surface.target_stage_delay_s,
        )
        for i, vt in enumerate(_vts()):
            for j, vdd in enumerate(_vdds()):
                assert surface.grid.zs[i][j] == cell(vt, vdd)

    def test_cells_match_ring_model(self):
        # The cell's plan kernels and association must be float-for-
        # float the ring model's stage_delay/energy_per_cycle chain.
        from repro.power.optimizer import RingOscillatorModel

        surface = _surface()
        ring = RingOscillatorModel(soi_low_vt(), stages=STAGES)
        for i, vt in enumerate(_vts()):
            for j, vdd in enumerate(_vdds()):
                if ring.stage_delay(vdd, vt) > surface.target_stage_delay_s:
                    assert surface.grid.zs[i][j] is None
                else:
                    point = ring.energy_per_cycle(vdd, vt, T_CYCLE)
                    assert surface.grid.zs[i][j] == point.energy_per_cycle_j

    def test_optimum_locus_rows(self):
        surface = _surface()
        locus = surface.optimum_locus()
        assert locus
        for vt, vdd, energy in locus:
            i = surface.grid.xs.index(vt)
            row = [v for v in surface.grid.zs[i] if v is not None]
            assert energy == min(row)
            assert surface.grid.zs[i][surface.grid.ys.index(vdd)] == energy

    def test_optimum_is_global_minimum(self):
        surface = _surface()
        vdd, vt, energy = surface.optimum()
        defined = [
            value
            for row in surface.grid.zs
            for value in row
            if value is not None
        ]
        assert energy == min(defined)
        assert vt in surface.grid.xs and vdd in surface.grid.ys

    def test_fully_infeasible_surface_raises(self):
        surface = energy_surface(
            soi_low_vt(), _vts(), [0.2, 0.25], 1e-10, stages=STAGES
        )
        assert surface.grid.defined_cells() == 0
        with pytest.raises(AnalysisError, match="no feasible"):
            surface.optimum()


class TestValidation:
    def test_nonpositive_cycle_rejected(self):
        with pytest.raises(AnalysisError, match="cycle time"):
            energy_surface(soi_low_vt(), _vts(), _vdds(), 0.0)

    def test_nonpositive_vdd_rejected(self):
        with pytest.raises(AnalysisError, match="vdd values"):
            energy_surface(
                soi_low_vt(), _vts(), [0.0, 0.5], T_CYCLE, stages=STAGES
            )

    def test_bad_cycle_stages_rejected(self):
        with pytest.raises(AnalysisError, match="cycle_stages"):
            _surface(cycle_stages=0)

    def test_negative_refine_levels_rejected(self):
        with pytest.raises(AnalysisError, match="refine_levels"):
            _surface(refine_levels=-1)

    def test_excessive_refine_levels_rejected(self):
        with pytest.raises(AnalysisError, match="refine_levels"):
            _surface(refine_levels=11)

    def test_bad_band_rejected(self):
        with pytest.raises(AnalysisError, match="refine_band"):
            _surface(refine_levels=1, refine_band=0.0)

    def test_refinement_needs_two_points_per_axis(self):
        with pytest.raises(AnalysisError, match="two points"):
            energy_surface(
                soi_low_vt(), [0.2], _vdds(), T_CYCLE,
                stages=STAGES, refine_levels=1,
            )


class TestRefinement:
    def test_refined_absent_by_default(self):
        assert _surface().refined is None

    def test_refined_points_match_uniform_grid(self):
        surface = _surface(refine_levels=2)
        refined = surface.refined
        assert refined.levels == 2
        uniform = energy_surface(
            soi_low_vt(), refined.xs, refined.ys, T_CYCLE,
            stages=STAGES,
        )
        for (i, j), value in refined.known().items():
            assert uniform.grid.zs[i][j] == value

    def test_refinement_skips_flat_regions(self):
        surface = _surface(refine_levels=2)
        refined = surface.refined
        assert refined.cells_refined > 0
        assert refined.cells_skipped > 0
        assert 0.0 < refined.coverage < 1.0
        assert refined.evaluated == len(refined.indices)

    def test_refinement_tracks_row_minima(self):
        # Every base cell holding a row's minimum must be refined:
        # its best corner is trivially within the band of itself.
        surface = _surface(refine_levels=1, refine_band=0.1)
        known = surface.refined.known()
        locus = surface.optimum_locus()
        assert locus
        for vt, vdd, _energy in locus:
            i = 2 * surface.grid.xs.index(vt)
            j = 2 * surface.grid.ys.index(vdd)
            neighbours = [
                known.get((i + di, j + dj))
                for di in (-1, 1)
                for dj in (-1, 1)
                if 0 <= i + di < len(surface.refined.xs)
                and 0 <= j + dj < len(surface.refined.ys)
            ]
            assert any(value is not None for value in neighbours)

    def test_counters(self):
        with obs.enabled_scope():
            _surface(refine_levels=1)
            counters = obs.snapshot()["counters"]
        assert counters["surface.cells_refined"] > 0
        assert counters["surface.cells_skipped"] > 0


class TestExecutionContract:
    def test_workers_match_serial(self):
        serial = _surface(refine_levels=2)
        fanned = _surface(refine_levels=2, workers=2)
        assert fanned.grid.zs == serial.grid.zs
        assert fanned.refined.indices == serial.refined.indices
        assert fanned.refined.values == serial.refined.values

    def test_store_roundtrip_matches_unstored(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore.at(str(tmp_path))
        cold = _surface(refine_levels=1, store=store)
        warm = _surface(refine_levels=1, store=store)
        plain = _surface(refine_levels=1)
        assert cold.grid.zs == warm.grid.zs == plain.grid.zs
        assert cold.refined.values == warm.refined.values
        assert warm.refined.values == plain.refined.values

    def test_progress_reports_completion(self):
        calls = []
        _surface(progress=lambda done, total: calls.append((done, total)))
        assert calls[-1][0] == calls[-1][1] == len(_vts()) * len(_vdds())

    def test_flow_passthrough_spans(self):
        flow = LowVoltageDesignFlow(
            technology=soi_low_vt(), clock_hz=CLOCK_HZ
        )
        with obs.enabled_scope():
            surface = flow.energy_surface(
                _vts(), _vdds(), stages=STAGES, refine_levels=1
            )
            timers = obs.snapshot()["timers"]
        assert "flow.energy_surface" in timers
        assert "analysis.energy_surface" in timers
        assert "analysis.surface_refine" in timers
        assert surface.t_cycle_s == flow.t_cycle_s
        reference = _surface(refine_levels=1)
        assert surface.grid.zs == reference.grid.zs
