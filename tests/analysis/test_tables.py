"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_series, format_table, format_value
from repro.errors import AnalysisError


class TestFormatValue:
    def test_scalars(self):
        assert format_value(None) == "-"
        assert format_value("text") == "text"
        assert format_value(True) == "yes"
        assert format_value(42) == "42"
        assert format_value(0.0) == "0"

    def test_engineering_thresholds(self):
        assert "e" in format_value(1.5e-12)
        assert "e" in format_value(2.5e7)
        assert "e" not in format_value(12.5)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["adder", 1], ["mult", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Columns align: 'v' column starts at the same offset everywhere.
        offset = lines[0].index("v")
        assert lines[2][offset] == "1"

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_empty_rows_allowed(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_headerless_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([], [[1]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(AnalysisError, match="row width"):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series("x", "y", [1.0, 2.0], [10.0, 20.0])
        assert "x" in text and "y" in text
        assert "10" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_series("x", "y", [1.0], [1.0, 2.0])
