"""Unit tests for sweep containers."""

import pytest

from repro.analysis.sweep import Sweep1D, sweep_1d, sweep_2d
from repro.errors import AnalysisError


class TestSweep1D:
    def test_samples_function(self):
        sweep = sweep_1d("x", "x^2", [0.0, 1.0, 2.0], lambda x: x * x)
        assert sweep.ys == (0.0, 1.0, 4.0)

    def test_argmin_argmax(self):
        sweep = sweep_1d("x", "y", [-2.0, 0.0, 3.0], lambda x: x * x)
        assert sweep.argmin() == (0.0, 0.0)
        assert sweep.argmax() == (3.0, 9.0)

    def test_monotonicity_checks(self):
        rising = sweep_1d("x", "y", [1.0, 2.0, 3.0], lambda x: x)
        assert rising.is_monotone(increasing=True)
        assert not rising.is_monotone(increasing=False)

    def test_interior_minimum_detection(self):
        u_shape = sweep_1d("x", "y", [-1.0, 0.0, 1.0], lambda x: x * x)
        assert u_shape.has_interior_minimum()
        slope = sweep_1d("x", "y", [0.0, 1.0], lambda x: x)
        assert not slope.has_interior_minimum()

    def test_rows(self):
        sweep = sweep_1d("x", "y", [1.0, 2.0], lambda x: 2 * x)
        assert sweep.rows() == [(1.0, 2.0), (2.0, 4.0)]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", "y", [], lambda x: x)
        with pytest.raises(AnalysisError):
            Sweep1D("x", "y", (1.0,), (1.0, 2.0))


class TestSweep2D:
    def test_grid_orientation(self):
        grid = sweep_2d(
            "x", "y", "z", [1.0, 2.0], [10.0, 20.0, 30.0],
            lambda x, y: x * y,
        )
        assert grid.at(0, 0) == 10.0
        assert grid.at(1, 2) == 60.0

    def test_none_cells(self):
        grid = sweep_2d(
            "x", "y", "z", [1.0, 2.0], [1.0, 2.0],
            lambda x, y: None if y > x else x + y,
        )
        assert grid.at(0, 1) is None
        assert grid.defined_cells() == 3

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sweep_2d("x", "y", "z", [], [1.0], lambda x, y: 0.0)
