"""Tests for Monte-Carlo V_T variation analysis."""

import math

import pytest

from repro.analysis.variation import (
    Distribution,
    MonteCarloAnalyzer,
    lognormal_leakage_amplification,
)
from repro.device.technology import soi_low_vt
from repro.errors import AnalysisError
from repro.tech.cells import standard_cells


@pytest.fixture(scope="module")
def inverter():
    return standard_cells()["INV"]


@pytest.fixture(scope="module")
def analyzer():
    return MonteCarloAnalyzer(
        soi_low_vt(), vt_sigma=0.03, n_samples=400, seed=1
    )


class TestDistribution:
    def test_moments(self):
        d = Distribution(samples=(1.0, 2.0, 3.0, 4.0))
        assert d.mean == pytest.approx(2.5)
        assert d.std == pytest.approx(math.sqrt(5.0 / 3.0))
        assert d.coefficient_of_variation == pytest.approx(d.std / 2.5)

    def test_percentiles(self):
        d = Distribution(samples=tuple(float(i) for i in range(101)))
        assert d.percentile(0) == 0.0
        assert d.percentile(50) == pytest.approx(50.0)
        assert d.percentile(100) == 100.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            Distribution(samples=(1.0,))
        with pytest.raises(AnalysisError):
            Distribution(samples=(1.0, 2.0)).percentile(101)

    def test_moments_computed_once_and_cached(self):
        d = Distribution(samples=(3.0, 1.0, 2.0))
        assert d._moments is None
        mean = d.mean
        cached = d._moments
        assert cached is not None
        assert d.std == cached[1] and d.mean == mean
        assert d._moments is cached

    def test_sorted_view_cached_across_percentile_calls(self):
        d = Distribution(samples=(3.0, 1.0, 2.0))
        assert d._ordered is None
        first = d.percentile(50)
        cached = d._ordered
        assert cached == [1.0, 2.0, 3.0]
        assert d.percentile(50) == first
        assert d._ordered is cached


class TestSampling:
    def test_deterministic_by_seed(self, analyzer):
        assert analyzer.sample_vt_shifts() == analyzer.sample_vt_shifts()

    def test_sample_moments_match_sigma(self, analyzer):
        shifts = analyzer.sample_vt_shifts()
        mean = sum(shifts) / len(shifts)
        var = sum((s - mean) ** 2 for s in shifts) / (len(shifts) - 1)
        assert abs(mean) < 0.01
        assert math.sqrt(var) == pytest.approx(0.03, rel=0.2)

    def test_zero_sigma_collapses(self, inverter):
        tight = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.0, n_samples=10
        )
        d = tight.delay_distribution(inverter, 1.0)
        assert d.coefficient_of_variation < 1e-12


class TestLeakageAmplification:
    def test_closed_form_value(self):
        # sigma_ln = 0.03 * ln10 / 0.066 ~ 1.047 -> exp(0.548) ~ 1.73.
        amplification = lognormal_leakage_amplification(0.03, 0.066)
        assert amplification == pytest.approx(1.73, rel=0.02)

    def test_measured_matches_closed_form(self, analyzer, inverter):
        measured = analyzer.leakage_amplification(inverter, 1.0)
        predicted = lognormal_leakage_amplification(0.03, 0.066)
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_amplification_grows_with_sigma(self, inverter):
        small = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.01, n_samples=300, seed=2
        ).leakage_amplification(inverter, 1.0)
        large = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.05, n_samples=300, seed=2
        ).leakage_amplification(inverter, 1.0)
        assert large > small > 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            lognormal_leakage_amplification(-0.01, 0.066)


class TestDelaySpread:
    def test_spread_grows_as_vdd_falls(self, analyzer, inverter):
        # The low-voltage variation penalty: CV(delay) explodes as the
        # overdrive shrinks.
        sweep = analyzer.delay_spread_vs_vdd(
            inverter, [1.2, 0.8, 0.5, 0.35]
        )
        cvs = [cv for _, cv in sweep]
        assert cvs == sorted(cvs)
        assert cvs[-1] > 3.0 * cvs[0]

    def test_empty_sweep_rejected(self, analyzer, inverter):
        with pytest.raises(AnalysisError):
            analyzer.delay_spread_vs_vdd(inverter, [])


class TestTimingYield:
    def test_guard_band_exceeds_nominal_solve(self, analyzer, inverter):
        from repro.tech.characterize import CellCharacterizer

        nominal = CellCharacterizer(soi_low_vt())
        target = nominal.propagation_delay(inverter, 0.6, 10e-15)
        guarded_vdd = analyzer.timing_yield_vdd(
            inverter, target, percentile=99.0
        )
        # Slow-corner devices need more supply than the nominal 0.6 V.
        assert guarded_vdd > 0.6

    def test_looser_percentile_needs_less_guard_band(
        self, analyzer, inverter
    ):
        from repro.tech.characterize import CellCharacterizer

        nominal = CellCharacterizer(soi_low_vt())
        target = nominal.propagation_delay(inverter, 0.6, 10e-15)
        strict = analyzer.timing_yield_vdd(inverter, target, percentile=99.0)
        loose = analyzer.timing_yield_vdd(inverter, target, percentile=50.0)
        assert loose < strict

    def test_unreachable_target_rejected(self, analyzer, inverter):
        with pytest.raises(AnalysisError, match="unreachable"):
            analyzer.timing_yield_vdd(inverter, 1e-18)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            MonteCarloAnalyzer(soi_low_vt(), vt_sigma=-1.0)
        with pytest.raises(AnalysisError):
            MonteCarloAnalyzer(soi_low_vt(), n_samples=1)

    @pytest.mark.parametrize(
        "bounds", [(0.0, 1.0), (-0.1, 1.0), (1.0, 1.0), (2.0, 0.1)]
    )
    def test_bad_vdd_bounds_rejected(self, analyzer, inverter, bounds):
        with pytest.raises(AnalysisError, match="bounds"):
            analyzer.timing_yield_vdd(inverter, 1e-9, vdd_bounds=bounds)

    def test_solve_memoizes_per_vdd_distributions(self, inverter):
        # The bisection revisits its bracket endpoints; each distinct
        # V_DD must be evaluated exactly once within one solve.
        analyzer = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.03, n_samples=50, seed=1
        )
        evaluated = []
        original = analyzer.delay_distribution

        def counting(cell, vdd, load_f=10e-15):
            evaluated.append(vdd)
            return original(cell, vdd, load_f)

        analyzer.delay_distribution = counting
        from repro.tech.characterize import CellCharacterizer

        target = CellCharacterizer(soi_low_vt()).propagation_delay(
            inverter, 0.6, 10e-15
        )
        analyzer.timing_yield_vdd(inverter, target)
        assert len(evaluated) == len(set(evaluated))


class TestBatchedPathParity:
    def test_serial_matches_per_sample_reference(self, inverter):
        analyzer = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.03, n_samples=24, seed=3
        )
        from repro.tech.characterize import CellCharacterizer

        reference = CellCharacterizer(soi_low_vt())
        shifts = analyzer.sample_vt_shifts()
        assert analyzer.delay_distribution(
            inverter, 0.6, 10e-15
        ).samples == tuple(
            reference.propagation_delay(inverter, 0.6, 10e-15, vt_shift=s)
            for s in shifts
        )
        assert analyzer.leakage_distribution(
            inverter, 0.6
        ).samples == tuple(
            reference.leakage_current(inverter, 0.6, vt_shift=s)
            for s in shifts
        )

    def test_worker_fanout_matches_serial(self, inverter):
        serial = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.03, n_samples=24, seed=3
        )
        fanned = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.03, n_samples=24, seed=3, workers=2
        )
        assert (
            fanned.delay_distribution(inverter, 0.8).samples
            == serial.delay_distribution(inverter, 0.8).samples
        )
