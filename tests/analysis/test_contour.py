"""Unit tests for the Fig. 10 surface and break-even contour."""

import math

import pytest

from repro.analysis.contour import (
    breakeven_bga,
    energy_ratio_surface,
    zero_crossing_cells,
)
from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_soi,
    e_soias,
)


@pytest.fixture
def module():
    return ModuleEnergyParameters(
        name="adder",
        switched_capacitance_f=300e-15,
        leakage_low_vt_a=5e-7,
        leakage_high_vt_a=1e-10,
        back_gate_capacitance_f=250e-15,
        back_gate_swing_v=3.0,
    )


VDD = 1.0
T = 1e-6


class TestBreakevenFormula:
    def test_closed_form_matches_energy_equality(self, module):
        fga = 0.1
        bga_star = breakeven_bga(module, fga, VDD, T)
        assert bga_star is not None
        soi = e_soi(module, fga, VDD, T)
        soias = e_soias(module, fga, min(bga_star, fga), VDD, T)
        if bga_star <= fga:
            assert soias == pytest.approx(soi, rel=1e-9)

    def test_idle_modules_have_higher_breakeven(self, module):
        busy = breakeven_bga(module, 0.9, VDD, T)
        idle = breakeven_bga(module, 0.1, VDD, T)
        assert idle > busy

    def test_no_back_gate_cap_returns_none(self, module):
        free = ModuleEnergyParameters(
            name="x",
            switched_capacitance_f=1e-13,
            leakage_low_vt_a=1e-9,
            leakage_high_vt_a=0.0,
            back_gate_capacitance_f=0.0,
            back_gate_swing_v=0.0,
        )
        assert breakeven_bga(free, 0.5, VDD, T) is None

    def test_validation(self, module):
        with pytest.raises(AnalysisError):
            breakeven_bga(module, 1.5, VDD, T)
        with pytest.raises(AnalysisError):
            breakeven_bga(module, 0.5, 0.0, T)


class TestRatioSurface:
    def test_infeasible_cells_are_none(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, fga_values=[0.01, 0.1], bga_values=[0.05, 0.2]
        )
        # bga 0.05 > fga 0.01 and bga 0.2 > both.
        assert surface.grid.at(0, 0) is None
        assert surface.grid.at(0, 1) is None
        assert surface.grid.at(1, 1) is None
        assert surface.grid.at(1, 0) is not None

    def test_ratio_increases_with_bga(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, [0.5], [0.001, 0.01, 0.1, 0.5]
        )
        row = [surface.grid.at(0, j) for j in range(4)]
        assert row == sorted(row)

    def test_exact_point_matches_grid(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        assert surface.log10_ratio(0.2, 0.05) == pytest.approx(
            surface.grid.at(0, 0)
        )

    def test_application_point_semantics(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        winner = surface.application_point("idle-unit", 0.05, 0.0005)
        assert winner.soias_wins
        assert 0.0 < winner.saving_fraction < 1.0
        loser = surface.application_point("busy-unit", 1.0, 0.9)
        assert not loser.soias_wins
        assert loser.saving_fraction < 0.0

    def test_saving_fraction_from_log_ratio(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        point = surface.application_point("p", 0.1, 0.001)
        assert point.saving_fraction == pytest.approx(
            1.0 - 10.0**point.log10_ratio
        )

    def test_breakeven_contour_clipped_to_feasible(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, [0.001, 0.5], [0.001]
        )
        contour = surface.breakeven_contour([0.001, 0.5])
        # At tiny fga the break-even bga exceeds fga -> None (SOIAS
        # always wins there).
        assert contour[0] is None or contour[0] <= 0.001

    def test_contour_zero_crossing(self, module):
        # Points straddling the contour have opposite-sign log ratios.
        fga = 0.3
        bga_star = breakeven_bga(module, fga, VDD, T)
        assert bga_star is not None and bga_star < fga
        surface = energy_ratio_surface(module, VDD, T, [fga], [0.001])
        below = surface.log10_ratio(fga, bga_star * 0.5)
        above = surface.log10_ratio(fga, min(bga_star * 2.0, fga))
        assert below < 0.0 < above


class TestAdaptiveRefinement:
    # A 10 us cycle makes the leakage term dominant at low fga, so the
    # break-even contour crosses the [1/n, 1]^2 grid diagonally.
    T_SLOW = 1e-5

    def _grid(self, n=6):
        return [i / n for i in range(1, n + 1)]

    def test_refined_absent_by_default(self, module):
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, self._grid(), self._grid()
        )
        assert surface.refined is None

    def test_refined_points_match_uniform_grid(self, module):
        grid = self._grid()
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid,
            refine_levels=2, refine_band=0.1,
        )
        refined = surface.refined
        assert refined.levels == 2
        uniform = energy_ratio_surface(
            module, VDD, self.T_SLOW, refined.xs, refined.ys
        )
        for (i, j), value in refined.known().items():
            assert uniform.grid.zs[i][j] == value
        assert refined.zero_cells() == zero_crossing_cells(
            uniform.grid.zs
        )

    def test_refinement_skips_flat_regions(self, module):
        grid = self._grid(8)
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid,
            refine_levels=2, refine_band=0.1,
        )
        refined = surface.refined
        assert refined.cells_skipped > 0
        assert 0.0 < refined.coverage < 1.0
        assert refined.evaluated == len(refined.indices)
        assert refined.total_points == len(refined.xs) * len(refined.ys)

    def test_axes_subdivided_per_level(self, module):
        grid = self._grid(4)
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid, refine_levels=3
        )
        refined = surface.refined
        assert len(refined.xs) == (len(grid) - 1) * 8 + 1
        assert refined.xs[0] == grid[0] and refined.xs[-1] == grid[-1]

    def test_value_at_unevaluated_point_raises(self, module):
        grid = self._grid(8)
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid,
            refine_levels=2, refine_band=0.1,
        )
        refined = surface.refined
        evaluated = set(refined.indices)
        unevaluated = next(
            (i, j)
            for i in range(len(refined.xs))
            for j in range(len(refined.ys))
            if (i, j) not in evaluated
        )
        with pytest.raises(AnalysisError, match="not evaluated"):
            refined.value_at(*unevaluated)

    def test_base_grid_unchanged(self, module):
        grid = self._grid()
        plain = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid
        )
        surface = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid, refine_levels=1
        )
        assert surface.grid.zs == plain.grid.zs

    def test_validation(self, module):
        grid = self._grid()
        with pytest.raises(AnalysisError, match="refine_levels"):
            energy_ratio_surface(
                module, VDD, self.T_SLOW, grid, grid, refine_levels=-1
            )
        with pytest.raises(AnalysisError, match="refine_levels"):
            energy_ratio_surface(
                module, VDD, self.T_SLOW, grid, grid, refine_levels=11
            )
        with pytest.raises(AnalysisError, match="refine_band"):
            energy_ratio_surface(
                module, VDD, self.T_SLOW, grid, grid,
                refine_levels=1, refine_band=0.0,
            )
        with pytest.raises(AnalysisError, match="two points"):
            energy_ratio_surface(
                module, VDD, self.T_SLOW, [0.5], grid, refine_levels=1
            )

    def test_zero_crossing_cells_helper(self):
        zs = [
            [-1.0, -0.5, 0.5],
            [-0.5, 0.5, 1.0],
            [None, 1.0, 2.0],
        ]
        assert zero_crossing_cells(zs) == ((0, 0), (0, 1), (1, 0))

    def test_refinement_fans_out_identically(self, module):
        grid = self._grid()
        serial = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid,
            refine_levels=2, refine_band=0.1,
        )
        fanned = energy_ratio_surface(
            module, VDD, self.T_SLOW, grid, grid,
            refine_levels=2, refine_band=0.1, workers=2,
        )
        assert fanned.refined.indices == serial.refined.indices
        assert fanned.refined.values == serial.refined.values


class TestLogRatioMath:
    def test_log10_consistency(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.01])
        fga, bga = 0.2, 0.01
        expected = math.log10(
            e_soias(module, fga, bga, VDD, T) / e_soi(module, fga, VDD, T)
        )
        assert surface.log10_ratio(fga, bga) == pytest.approx(expected)
