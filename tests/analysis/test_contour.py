"""Unit tests for the Fig. 10 surface and break-even contour."""

import math

import pytest

from repro.analysis.contour import (
    breakeven_bga,
    energy_ratio_surface,
)
from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_soi,
    e_soias,
)


@pytest.fixture
def module():
    return ModuleEnergyParameters(
        name="adder",
        switched_capacitance_f=300e-15,
        leakage_low_vt_a=5e-7,
        leakage_high_vt_a=1e-10,
        back_gate_capacitance_f=250e-15,
        back_gate_swing_v=3.0,
    )


VDD = 1.0
T = 1e-6


class TestBreakevenFormula:
    def test_closed_form_matches_energy_equality(self, module):
        fga = 0.1
        bga_star = breakeven_bga(module, fga, VDD, T)
        assert bga_star is not None
        soi = e_soi(module, fga, VDD, T)
        soias = e_soias(module, fga, min(bga_star, fga), VDD, T)
        if bga_star <= fga:
            assert soias == pytest.approx(soi, rel=1e-9)

    def test_idle_modules_have_higher_breakeven(self, module):
        busy = breakeven_bga(module, 0.9, VDD, T)
        idle = breakeven_bga(module, 0.1, VDD, T)
        assert idle > busy

    def test_no_back_gate_cap_returns_none(self, module):
        free = ModuleEnergyParameters(
            name="x",
            switched_capacitance_f=1e-13,
            leakage_low_vt_a=1e-9,
            leakage_high_vt_a=0.0,
            back_gate_capacitance_f=0.0,
            back_gate_swing_v=0.0,
        )
        assert breakeven_bga(free, 0.5, VDD, T) is None

    def test_validation(self, module):
        with pytest.raises(AnalysisError):
            breakeven_bga(module, 1.5, VDD, T)
        with pytest.raises(AnalysisError):
            breakeven_bga(module, 0.5, 0.0, T)


class TestRatioSurface:
    def test_infeasible_cells_are_none(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, fga_values=[0.01, 0.1], bga_values=[0.05, 0.2]
        )
        # bga 0.05 > fga 0.01 and bga 0.2 > both.
        assert surface.grid.at(0, 0) is None
        assert surface.grid.at(0, 1) is None
        assert surface.grid.at(1, 1) is None
        assert surface.grid.at(1, 0) is not None

    def test_ratio_increases_with_bga(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, [0.5], [0.001, 0.01, 0.1, 0.5]
        )
        row = [surface.grid.at(0, j) for j in range(4)]
        assert row == sorted(row)

    def test_exact_point_matches_grid(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        assert surface.log10_ratio(0.2, 0.05) == pytest.approx(
            surface.grid.at(0, 0)
        )

    def test_application_point_semantics(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        winner = surface.application_point("idle-unit", 0.05, 0.0005)
        assert winner.soias_wins
        assert 0.0 < winner.saving_fraction < 1.0
        loser = surface.application_point("busy-unit", 1.0, 0.9)
        assert not loser.soias_wins
        assert loser.saving_fraction < 0.0

    def test_saving_fraction_from_log_ratio(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.05])
        point = surface.application_point("p", 0.1, 0.001)
        assert point.saving_fraction == pytest.approx(
            1.0 - 10.0**point.log10_ratio
        )

    def test_breakeven_contour_clipped_to_feasible(self, module):
        surface = energy_ratio_surface(
            module, VDD, T, [0.001, 0.5], [0.001]
        )
        contour = surface.breakeven_contour([0.001, 0.5])
        # At tiny fga the break-even bga exceeds fga -> None (SOIAS
        # always wins there).
        assert contour[0] is None or contour[0] <= 0.001

    def test_contour_zero_crossing(self, module):
        # Points straddling the contour have opposite-sign log ratios.
        fga = 0.3
        bga_star = breakeven_bga(module, fga, VDD, T)
        assert bga_star is not None and bga_star < fga
        surface = energy_ratio_surface(module, VDD, T, [fga], [0.001])
        below = surface.log10_ratio(fga, bga_star * 0.5)
        above = surface.log10_ratio(fga, min(bga_star * 2.0, fga))
        assert below < 0.0 < above


class TestLogRatioMath:
    def test_log10_consistency(self, module):
        surface = energy_ratio_surface(module, VDD, T, [0.2], [0.01])
        fga, bga = 0.2, 0.01
        expected = math.log10(
            e_soias(module, fga, bga, VDD, T) / e_soi(module, fga, VDD, T)
        )
        assert surface.log10_ratio(fga, bga) == pytest.approx(expected)
