"""Tests for energy-delay exploration and Pareto fronts."""

import pytest

from repro.analysis.pareto import (
    DesignPoint,
    EnergyDelayExplorer,
    pareto_front,
)
from repro.device.technology import soi_low_vt
from repro.errors import AnalysisError

VDD_GRID = [0.3, 0.5, 0.8, 1.2]
VT_GRID = [0.1, 0.2, 0.3]


@pytest.fixture(scope="module")
def explorer():
    return EnergyDelayExplorer(soi_low_vt(), stages=11)


class TestDesignPoint:
    def test_edp(self):
        point = DesignPoint(vdd=1.0, vt=0.2, delay_s=2.0, energy_j=3.0)
        assert point.energy_delay_product == 6.0

    def test_domination(self):
        fast_cheap = DesignPoint(1.0, 0.2, 1.0, 1.0)
        slow_costly = DesignPoint(1.0, 0.2, 2.0, 2.0)
        tied = DesignPoint(1.0, 0.2, 1.0, 1.0)
        assert fast_cheap.dominates(slow_costly)
        assert not slow_costly.dominates(fast_cheap)
        assert not fast_cheap.dominates(tied)


class TestParetoFront:
    def test_front_is_nondominated_and_sorted(self):
        points = [
            DesignPoint(0, 0, 3.0, 1.0),
            DesignPoint(0, 0, 1.0, 3.0),
            DesignPoint(0, 0, 2.0, 2.0),
            DesignPoint(0, 0, 2.5, 2.5),  # dominated by (2, 2)
        ]
        front = pareto_front(points)
        delays = [p.delay_s for p in front]
        energies = [p.energy_j for p in front]
        assert delays == sorted(delays)
        assert energies == sorted(energies, reverse=True)
        assert all(p.delay_s != 2.5 for p in front)

    def test_single_point(self):
        point = DesignPoint(0, 0, 1.0, 1.0)
        assert pareto_front([point]) == [point]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            pareto_front([])


class TestExplorer:
    def test_grid_size(self, explorer):
        points = explorer.explore(VDD_GRID, VT_GRID)
        assert len(points) == len(VDD_GRID) * len(VT_GRID)

    def test_front_nondominated_within_grid(self, explorer):
        points = explorer.explore(VDD_GRID, VT_GRID)
        front = explorer.front(VDD_GRID, VT_GRID)
        for candidate in front:
            assert not any(p.dominates(candidate) for p in points)

    def test_front_shows_the_energy_delay_trade(self, explorer):
        front = explorer.front(VDD_GRID, VT_GRID)
        assert len(front) >= 2
        delays = [p.delay_s for p in front]
        energies = [p.energy_j for p in front]
        assert delays == sorted(delays)
        assert energies == sorted(energies, reverse=True)

    def test_minimum_edp_is_grid_minimum(self, explorer):
        best = explorer.minimum_edp_point(VDD_GRID, VT_GRID)
        points = explorer.explore(VDD_GRID, VT_GRID)
        assert best.energy_delay_product == min(
            p.energy_delay_product for p in points
        )

    def test_energy_under_delay_bound(self, explorer):
        fastest = min(
            explorer.explore(VDD_GRID, VT_GRID), key=lambda p: p.delay_s
        )
        relaxed = explorer.minimum_energy_under_delay(
            VDD_GRID, VT_GRID, 10.0 * fastest.delay_s
        )
        tight = explorer.minimum_energy_under_delay(
            VDD_GRID, VT_GRID, 1.01 * fastest.delay_s
        )
        assert relaxed.energy_j <= tight.energy_j

    def test_impossible_bound_rejected(self, explorer):
        with pytest.raises(AnalysisError, match="bound"):
            explorer.minimum_energy_under_delay(VDD_GRID, VT_GRID, 1e-18)

    def test_empty_grid_rejected(self, explorer):
        with pytest.raises(AnalysisError):
            explorer.explore([], VT_GRID)
