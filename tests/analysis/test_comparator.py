"""Unit tests for the technology comparator."""

import pytest

from repro.analysis.comparator import TechnologyComparator
from repro.errors import AnalysisError
from repro.power.energy import ModuleEnergyParameters


@pytest.fixture
def module():
    return ModuleEnergyParameters(
        name="shifter",
        switched_capacitance_f=250e-15,
        leakage_low_vt_a=3e-7,
        leakage_high_vt_a=5e-11,
        back_gate_capacitance_f=260e-15,
        back_gate_swing_v=3.0,
    )


@pytest.fixture
def comparator(module):
    return TechnologyComparator(module, vdd=1.0, t_cycle_s=1e-6)


class TestVerdicts:
    def test_idle_unit_all_burst_modes_win(self, comparator):
        verdicts = comparator.all_verdicts(fga=0.01, bga=0.005)
        assert verdicts["soias"].wins
        assert verdicts["mtcmos"].wins

    def test_busy_unit_soias_loses(self, comparator):
        verdict = comparator.verdict("soias", fga=1.0, bga=0.9)
        assert not verdict.wins
        assert verdict.saving_percent < 0.0

    def test_saving_percent_definition(self, comparator):
        verdict = comparator.verdict("soias", fga=0.05, bga=0.01)
        assert verdict.saving_percent == pytest.approx(
            100.0 * (1.0 - verdict.ratio)
        )

    def test_mtcmos_cheaper_control_than_soias_here(self, comparator):
        # Control charges to V_DD = 1 V instead of the 3 V back-gate
        # rail: 9x cheaper per toggle at equal capacitance.
        soias = comparator.verdict("soias", fga=0.2, bga=0.1)
        mtcmos = comparator.verdict("mtcmos", fga=0.2, bga=0.1)
        assert mtcmos.candidate_energy_j < soias.candidate_energy_j

    def test_vtcmos_pays_for_the_well(self, comparator):
        # Default well model: 3x the back-plane capacitance at 3 V
        # swing -> the most expensive control of the three.
        vtcmos = comparator.verdict("vtcmos", fga=0.2, bga=0.1)
        soias = comparator.verdict("soias", fga=0.2, bga=0.1)
        assert vtcmos.candidate_energy_j > soias.candidate_energy_j

    def test_unknown_technology_rejected(self, comparator):
        with pytest.raises(AnalysisError, match="unknown technology"):
            comparator.verdict("pixie-dust", 0.1, 0.05)

    def test_verdict_metadata(self, comparator, module):
        verdict = comparator.verdict("soias", 0.1, 0.05)
        assert verdict.module == module.name
        assert verdict.technology == "soias"
        assert verdict.fga == 0.1

    def test_operating_point_validated(self, module):
        with pytest.raises(AnalysisError):
            TechnologyComparator(module, vdd=0.0, t_cycle_s=1e-6)


class TestBaseline:
    def test_baseline_is_eq3(self, comparator, module):
        fga = 0.3
        expected = (
            fga * module.switched_capacitance_f
            + module.leakage_low_vt_a * 1e-6
        )
        assert comparator.baseline_energy(fga) == pytest.approx(expected)
