"""Small-fan-out gating and pickle-fallback diagnostics in map_items.

The pool only pays off when there are enough cheap items to amortize
worker startup and IPC — the seed benchmark showed a 64x64 contour
grid running ~14x *slower* with two workers than serially.  These
tests pin the ``min_parallel_items`` gate (small grids fall back to
the serial path, counted in ``parallel.min_items_fallbacks``) and the
no-longer-silent pickle fallback (one-time ``RuntimeWarning`` plus
``parallel.pickle_fallbacks``).
"""

import warnings

import pytest

from repro import obs
from repro.analysis import parallel
from repro.analysis.parallel import map_grid, map_items
from repro.analysis.sweep import sweep_2d


def _add(x, y):
    return x + y


def _sum_pair(pair):
    return pair[0] + pair[1]


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


class TestMinItemsGate:
    def test_small_grid_falls_back_and_matches_serial(self):
        xs = [float(i) for i in range(8)]
        ys = [float(j) for j in range(8)]
        with obs.enabled_scope():
            grid = map_grid(_add, xs, ys, workers=2)
            counters = obs.snapshot()["counters"]
        assert counters["parallel.min_items_fallbacks"] == 1
        assert grid == map_grid(_add, xs, ys, workers=0)

    def test_explicit_chunksize_bypasses_gate(self):
        xs = [float(i) for i in range(3)]
        ys = [float(j) for j in range(4)]
        with obs.enabled_scope():
            grid = map_grid(_add, xs, ys, workers=2, chunksize=2)
            counters = obs.snapshot()["counters"]
        assert "parallel.min_items_fallbacks" not in counters
        assert grid == map_grid(_add, xs, ys, workers=0)

    def test_zero_disables_gate(self):
        xs = [float(i) for i in range(3)]
        ys = [float(j) for j in range(4)]
        with obs.enabled_scope():
            grid = map_grid(
                _add, xs, ys, workers=2, min_parallel_items=0
            )
            counters = obs.snapshot()["counters"]
        assert "parallel.min_items_fallbacks" not in counters
        assert grid == map_grid(_add, xs, ys, workers=0)

    def test_map_items_defaults_to_no_gate(self):
        items = [(float(k), float(k)) for k in range(6)]
        with obs.enabled_scope():
            values = map_items(_sum_pair, items, workers=2)
            counters = obs.snapshot()["counters"]
        assert "parallel.min_items_fallbacks" not in counters
        assert values == [x + y for x, y in items]

    def test_serial_requests_are_not_counted(self):
        xs = [float(i) for i in range(4)]
        ys = [float(j) for j in range(4)]
        with obs.enabled_scope():
            map_grid(_add, xs, ys, workers=0)
            counters = obs.snapshot()["counters"]
        assert "parallel.min_items_fallbacks" not in counters

    def test_sweep_2d_inherits_library_threshold(self):
        xs = [float(i) for i in range(5)]
        ys = [float(j) for j in range(5)]
        with obs.enabled_scope():
            swept = sweep_2d("x", "y", "z", xs, ys, _add, workers=2)
            counters = obs.snapshot()["counters"]
        assert counters["parallel.min_items_fallbacks"] == 1
        reference = sweep_2d("x", "y", "z", xs, ys, _add, workers=0)
        assert swept.zs == reference.zs


class TestPickleFallback:
    def test_warns_once_and_counts(self, monkeypatch):
        monkeypatch.setattr(parallel, "_PICKLE_FALLBACK_WARNED", False)
        items = [(float(k), float(k)) for k in range(3)]
        closure = lambda pair: pair[0] + pair[1]  # noqa: E731
        with obs.enabled_scope():
            with pytest.warns(RuntimeWarning, match="not picklable"):
                first = map_items(closure, items, workers=2)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = map_items(closure, items, workers=2)
            counters = obs.snapshot()["counters"]
        assert counters["parallel.pickle_fallbacks"] == 2
        assert first == second == [x + y for x, y in items]

    def test_picklable_fn_does_not_warn_or_count(self):
        items = [(float(k), float(k)) for k in range(3)]
        with obs.enabled_scope():
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                map_items(
                    _sum_pair, items, workers=2, min_parallel_items=0
                )
            counters = obs.snapshot()["counters"]
        assert "parallel.pickle_fallbacks" not in counters
