"""Static checks on the example scripts (full runs are manual/slow)."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleScripts:
    def test_parses(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_module_docstring_with_run_line(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} missing docstring"
        assert f"python examples/{path.name}" in docstring

    def test_defines_main_and_guard(self, path):
        source = path.read_text()
        tree = ast.parse(source)
        functions = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, path.name
        assert '__name__ == "__main__"' in source, path.name

    def test_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = __import__(
                        node.module, fromlist=[a.name for a in node.names]
                    )
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name}: {node.module}.{alias.name}"
                        )


def test_every_example_is_listed_in_the_readme():
    readme = (
        pathlib.Path(__file__).parent.parent / "README.md"
    ).read_text()
    for path in EXAMPLES:
        assert f"examples/{path.name}" in readme, path.name
