"""Tests for slack computation and dual-V_T assignment."""

import pytest

from repro.circuits.builders import (
    carry_select_adder,
    pipelined_adder,
    ripple_carry_adder,
)
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError, OptimizationError
from repro.power.dualvt import DualVtOptimizer


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def analyzer(tech):
    return StaticTimingAnalyzer(tech)


class TestSlacks:
    def test_critical_gate_has_zero_slack(self, analyzer):
        netlist = ripple_carry_adder(8)
        slacks = analyzer.slacks(netlist, 1.0)
        assert min(slacks.values()) == pytest.approx(0.0, abs=1e-15)

    def test_all_slacks_nonnegative_at_default_required(self, analyzer):
        netlist = carry_select_adder(12, 4)
        slacks = analyzer.slacks(netlist, 1.0)
        assert all(s >= -1e-15 for s in slacks.values())

    def test_looser_required_time_adds_uniform_slack(self, analyzer):
        netlist = ripple_carry_adder(6)
        base = analyzer.slacks(netlist, 1.0)
        critical = analyzer.analyze(netlist, 1.0).delay_s
        loose = analyzer.slacks(
            netlist, 1.0, required_time_s=critical * 1.5
        )
        for name in base:
            assert loose[name] == pytest.approx(
                base[name] + 0.5 * critical, rel=1e-6
            )

    def test_slacks_cover_every_instance(self, analyzer):
        netlist = carry_select_adder(8, 4)
        slacks = analyzer.slacks(netlist, 1.0)
        assert set(slacks) == set(netlist.instances)

    def test_sequential_endpoints_respected(self, analyzer):
        netlist = pipelined_adder(8, 2)
        slacks = analyzer.slacks(netlist, 1.0)
        assert min(slacks.values()) == pytest.approx(0.0, abs=1e-15)

    def test_unknown_instance_shift_rejected(self, analyzer):
        netlist = ripple_carry_adder(4)
        with pytest.raises(NetlistError, match="unknown instances"):
            analyzer.analyze(
                netlist, 1.0, per_instance_vt_shifts={"ghost": 0.1}
            )


class TestPerInstanceShifts:
    def test_slowing_off_critical_gate_keeps_delay(self, analyzer):
        netlist = carry_select_adder(12, 4)
        slacks = analyzer.slacks(netlist, 1.0)
        laziest = max(slacks, key=slacks.get)
        base = analyzer.analyze(netlist, 1.0).delay_s
        shifted = analyzer.analyze(
            netlist, 1.0, per_instance_vt_shifts={laziest: 0.2}
        ).delay_s
        assert shifted <= base * 1.001

    def test_slowing_critical_gate_grows_delay(self, analyzer):
        netlist = ripple_carry_adder(8)
        slacks = analyzer.slacks(netlist, 1.0)
        tightest = min(slacks, key=slacks.get)
        base = analyzer.analyze(netlist, 1.0).delay_s
        shifted = analyzer.analyze(
            netlist, 1.0, per_instance_vt_shifts={tightest: 0.2}
        ).delay_s
        assert shifted > base


class TestDualVtOptimizer:
    @pytest.fixture(scope="class")
    def optimizer(self, tech):
        return DualVtOptimizer(
            carry_select_adder(12, 4), tech, vdd=1.0
        )

    def test_zero_budget_keeps_timing(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert result.delay_s <= result.baseline_delay_s * 1.0001
        assert result.delay_penalty == pytest.approx(0.0, abs=1e-3)

    def test_meaningful_fraction_goes_high_vt(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert result.high_vt_fraction > 0.5

    def test_leakage_drops_hard(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert result.leakage_reduction > 3.0
        assert result.leakage_a < result.baseline_leakage_a

    def test_looser_budget_converts_more_gates(self, optimizer):
        tight = optimizer.optimize(delay_budget=1.0)
        loose = optimizer.optimize(delay_budget=1.15)
        assert len(loose.high_vt_gates) >= len(tight.high_vt_gates)
        assert loose.leakage_a <= tight.leakage_a
        assert loose.delay_s <= loose.baseline_delay_s * 1.15 * 1.0001

    def test_assignment_is_verifiable(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        # Recompute delay/leakage from the returned gate set.
        assert optimizer.delay(result.high_vt_gates) == pytest.approx(
            result.delay_s
        )
        assert optimizer.leakage(result.high_vt_gates) == pytest.approx(
            result.leakage_a
        )

    def test_ripple_adder_has_less_room(self, tech):
        # Almost everything in a ripple adder feeds the carry chain;
        # the carry-select design has far more off-critical slack.
        ripple = DualVtOptimizer(
            ripple_carry_adder(12), tech, vdd=1.0
        ).optimize(1.0)
        select = DualVtOptimizer(
            carry_select_adder(12, 4), tech, vdd=1.0
        ).optimize(1.0)
        assert select.high_vt_fraction > ripple.high_vt_fraction

    def test_parameters_validated(self, tech):
        netlist = ripple_carry_adder(4)
        with pytest.raises(OptimizationError):
            DualVtOptimizer(netlist, tech, vdd=1.0, high_vt_shift=0.0)
        with pytest.raises(OptimizationError):
            DualVtOptimizer(netlist, tech, vdd=1.0).optimize(0.9)
