"""Unit tests for the Section 2 power components."""

import pytest

from repro.errors import AnalysisError
from repro.power.components import (
    PowerBreakdown,
    leakage_power,
    short_circuit_power_veendrick,
    switching_power,
)


class TestSwitchingPower:
    def test_eq1_formula(self):
        # P = alpha * C * V^2 * f
        assert switching_power(0.5, 100e-15, 2.0, 1e6) == pytest.approx(
            0.5 * 100e-15 * 4.0 * 1e6
        )

    def test_quadratic_in_vdd(self):
        p1 = switching_power(1.0, 1e-12, 1.0, 1e6)
        p3 = switching_power(1.0, 1e-12, 3.0, 1e6)
        assert p3 / p1 == pytest.approx(9.0)

    def test_glitchy_alpha_above_one_allowed(self):
        assert switching_power(1.5, 1e-12, 1.0, 1e6) > 0.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(AnalysisError, match="alpha"):
            switching_power(-0.1, 1e-12, 1.0, 1e6)

    def test_nonpositive_operating_point_rejected(self):
        with pytest.raises(AnalysisError):
            switching_power(0.5, 1e-12, 0.0, 1e6)
        with pytest.raises(AnalysisError):
            switching_power(0.5, 1e-12, 1.0, 0.0)


class TestLeakagePower:
    def test_formula(self):
        assert leakage_power(1e-9, 1.5) == pytest.approx(1.5e-9)

    def test_negative_current_rejected(self):
        with pytest.raises(AnalysisError):
            leakage_power(-1e-9, 1.0)


class TestShortCircuitPower:
    def test_zero_without_rail_overlap(self):
        # V_DD < V_Tn + |V_Tp|: both devices never conduct at once.
        assert (
            short_circuit_power_veendrick(
                1e-4, 0.5, 0.3, 0.3, 1e-9, 1e6
            )
            == 0.0
        )

    def test_cubic_in_overlap(self):
        p1 = short_circuit_power_veendrick(1e-4, 1.0, 0.2, 0.2, 1e-9, 1e6)
        # Same overlap achieved with double vdd and huge thresholds to
        # isolate the 1/vdd factor is messy; instead scale thresholds.
        p2 = short_circuit_power_veendrick(1e-4, 1.4, 0.1, 0.1, 1e-9, 1e6)
        overlap1, overlap2 = 0.6, 1.2
        expected = (overlap2 / overlap1) ** 3 * (1.0 / 1.4)
        assert p2 / p1 == pytest.approx(expected)

    def test_linear_in_transition_time(self):
        slow = short_circuit_power_veendrick(1e-4, 1.0, 0.2, 0.2, 2e-9, 1e6)
        fast = short_circuit_power_veendrick(1e-4, 1.0, 0.2, 0.2, 1e-9, 1e6)
        assert slow == pytest.approx(2.0 * fast)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            short_circuit_power_veendrick(1e-4, 1.0, 0.2, 0.2, -1e-9, 1e6)
        with pytest.raises(AnalysisError):
            short_circuit_power_veendrick(
                1e-4, 1.0, 0.2, 0.2, 1e-9, 1e6, transitions_per_cycle=-1.0
            )


class TestPowerBreakdown:
    def test_total_and_fractions(self):
        breakdown = PowerBreakdown(6.0, 1.0, 3.0)
        assert breakdown.total_w == pytest.approx(10.0)
        assert breakdown.fraction("switching") == pytest.approx(0.6)
        assert breakdown.fraction("leakage") == pytest.approx(0.3)

    def test_zero_total_fraction(self):
        breakdown = PowerBreakdown(0.0, 0.0, 0.0)
        assert breakdown.fraction("switching") == 0.0

    def test_unknown_component_rejected(self):
        with pytest.raises(AnalysisError, match="unknown component"):
            PowerBreakdown(1.0, 0.0, 0.0).fraction("magic")

    def test_addition_and_scaling(self):
        a = PowerBreakdown(1.0, 0.5, 0.25)
        b = PowerBreakdown(2.0, 0.5, 0.75)
        combined = a + b
        assert combined.switching_w == pytest.approx(3.0)
        assert combined.total_w == pytest.approx(5.0)
        assert a.scaled(2.0).leakage_w == pytest.approx(0.5)

    def test_negative_component_rejected(self):
        with pytest.raises(AnalysisError):
            PowerBreakdown(-1.0, 0.0, 0.0)
        with pytest.raises(AnalysisError):
            PowerBreakdown(1.0, 0.0, 0.0).scaled(-1.0)
