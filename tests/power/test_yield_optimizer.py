"""Yield-constrained (statistical) optimizer tests.

Covers the VariationSpec plumbing, the percentile math shared with the
Monte-Carlo analyzer, the ring and module yield solves, the
nominal-equivalence guarantee (``variation=None`` is bit-identical to
the plain optimizer), and the low-V_DD-clamp interaction.
"""

import pytest

from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.power.optimizer import (
    FixedThroughputOptimizer,
    RingOscillatorModel,
    StatisticalOperatingPoint,
    VariationSpec,
    _percentile,
)

VTS = [0.1, 0.2, 0.3]


@pytest.fixture(scope="module")
def ring():
    return RingOscillatorModel(soi_low_vt(), stages=11)


@pytest.fixture(scope="module")
def target(ring):
    return 2.0 * ring.stage_delay(1.0, 0.2)


@pytest.fixture(scope="module")
def spec():
    return VariationSpec(
        percentile=99.0, vt_sigma=0.03, n_samples=60, seed=0
    )


class TestVariationSpec:
    def test_defaults(self):
        spec = VariationSpec()
        assert spec.percentile == 99.0
        assert spec.vt_sigma == 0.03
        assert spec.n_samples == 300
        assert spec.seed == 0

    def test_validation(self):
        with pytest.raises(OptimizationError, match="percentile"):
            VariationSpec(percentile=101.0)
        with pytest.raises(OptimizationError, match="percentile"):
            VariationSpec(percentile=-1.0)
        with pytest.raises(OptimizationError, match="vt_sigma"):
            VariationSpec(vt_sigma=-0.01)
        with pytest.raises(OptimizationError, match="samples"):
            VariationSpec(n_samples=1)

    def test_draw_shifts_deterministic_and_matches_analyzer(self):
        from repro.analysis.variation import MonteCarloAnalyzer

        spec = VariationSpec(vt_sigma=0.05, n_samples=40, seed=7)
        shifts = spec.draw_shifts()
        assert shifts == spec.draw_shifts()
        analyzer = MonteCarloAnalyzer(
            soi_low_vt(), vt_sigma=0.05, n_samples=40, seed=7
        )
        assert shifts == analyzer.sample_vt_shifts()

    def test_optimizer_rejects_non_spec(self, ring):
        with pytest.raises(OptimizationError, match="VariationSpec"):
            FixedThroughputOptimizer(ring, variation=0.99)


class TestPercentileMath:
    def test_matches_distribution_percentile(self):
        from repro.analysis.variation import Distribution

        values = [4.0, 1.0, 3.5, 2.0, 9.0, 0.5, 6.25]
        dist = Distribution(values)
        for p in (0.0, 10.0, 50.0, 90.0, 99.0, 100.0):
            assert _percentile(values, p) == dist.percentile(p)


class TestRingYieldSolve:
    def test_percentile_delay_hits_target(self, ring, target, spec):
        vdd = ring.solve_vdd_for_yield(
            target, 0.2, percentile=spec.percentile,
            vt_sigma=spec.vt_sigma, n_samples=spec.n_samples,
            seed=spec.seed,
        )
        shifts = spec.draw_shifts()
        plan_delay = ring._stage_delay_percentile(
            vdd, 0.2, shifts, spec.percentile
        )
        assert plan_delay == pytest.approx(target, rel=1e-6)

    def test_guard_band_over_nominal(self, ring, target):
        for vt in VTS:
            nominal = ring.solve_vdd_for_delay(target, vt)
            statistical = ring.solve_vdd_for_yield(
                target, vt, n_samples=60
            )
            assert statistical > nominal

    def test_median_solve_tracks_nominal(self, ring, target):
        # p50 of a zero-mean spread should need roughly the nominal
        # supply — well inside the p99 guard band.
        p50 = ring.solve_vdd_for_yield(
            target, 0.2, percentile=50.0, n_samples=200
        )
        p99 = ring.solve_vdd_for_yield(
            target, 0.2, percentile=99.0, n_samples=200
        )
        nominal = ring.solve_vdd_for_delay(target, 0.2)
        assert abs(p50 - nominal) < p99 - nominal

    def test_zero_sigma_matches_nominal(self, ring, target):
        exact = ring.solve_vdd_for_delay(target, 0.2)
        degenerate = ring.solve_vdd_for_yield(
            target, 0.2, vt_sigma=0.0, n_samples=10
        )
        assert degenerate == pytest.approx(exact, rel=1e-9)

    def test_unreachable_target_raises(self, ring):
        with pytest.raises(OptimizationError, match="unreachable"):
            ring.solve_vdd_for_yield(1e-15, 0.4, n_samples=10)

    def test_validation(self, ring, target):
        with pytest.raises(OptimizationError, match="positive"):
            ring.solve_vdd_for_yield(-1.0, 0.2)
        with pytest.raises(OptimizationError, match="bounds"):
            ring.solve_vdd_for_yield(
                target, 0.2, vdd_bounds=(1.0, 0.5)
            )
        with pytest.raises(OptimizationError, match="samples"):
            ring.solve_vdd_for_yield(target, 0.2, n_samples=1)


class TestLowBoundClampInteraction:
    def test_statistical_solve_exceeds_nominal_clamp(self, ring):
        # A relaxed target the ring meets at the minimum supply
        # nominally, but not at the p99 corner: delay at V_DD near
        # (below) V_T is exponentially sensitive to the V_T spread, so
        # the slow tail misses timing where the nominal corner
        # coasts.  The nominal solve clamps; the statistical one must
        # keep bisecting to a strictly higher supply.
        vt = 0.2
        min_vdd = ring.technology.min_vdd
        relaxed = 1.05 * ring.stage_delay(min_vdd, vt)
        nominal = ring.solve_vdd_for_delay(relaxed, vt)
        assert nominal == pytest.approx(min_vdd)
        statistical = ring.solve_vdd_for_yield(
            relaxed, vt, percentile=99.0, vt_sigma=0.03, n_samples=60
        )
        assert statistical > min_vdd
        shifts = VariationSpec(n_samples=60).draw_shifts()
        assert (
            ring._stage_delay_percentile(min_vdd, vt, shifts, 99.0)
            > relaxed
        )

    def test_statistical_solve_still_clamps_when_tail_meets_timing(
        self, ring
    ):
        # A target so relaxed even the p99 corner meets it at the
        # minimum supply keeps the clamp semantics.
        vt = 0.2
        min_vdd = ring.technology.min_vdd
        very_relaxed = 1e6 * ring.stage_delay(min_vdd, vt)
        assert ring.solve_vdd_for_yield(
            very_relaxed, vt, n_samples=20
        ) == pytest.approx(min_vdd)


class TestStatisticalEnergy:
    def test_point_shape(self, ring, target, spec):
        vdd = ring.solve_vdd_for_yield(
            target, 0.2, n_samples=spec.n_samples, seed=spec.seed
        )
        point = ring.statistical_energy_per_cycle(vdd, 0.2, 1e-8, spec)
        assert isinstance(point, StatisticalOperatingPoint)
        assert point.percentile == spec.percentile
        # The p99 corner is slower than the nominal corner at the
        # same supply.
        assert point.delay_percentile_s > point.stage_delay_s
        assert point.energy_per_cycle_j == pytest.approx(
            point.switching_energy_j + point.leakage_energy_j
        )

    def test_leakage_amplification_tracks_lognormal(self, ring, spec):
        big = VariationSpec(
            percentile=spec.percentile, vt_sigma=spec.vt_sigma,
            n_samples=400, seed=0,
        )
        point = ring.statistical_energy_per_cycle(0.8, 0.2, 1e-8, big)
        assert point.lognormal_amplification > 1.5
        assert point.leakage_amplification == pytest.approx(
            point.lognormal_amplification, rel=0.15
        )

    def test_statistical_leakage_exceeds_nominal(self, ring, spec):
        nominal = ring.energy_per_cycle(0.8, 0.2, 1e-8)
        statistical = ring.statistical_energy_per_cycle(
            0.8, 0.2, 1e-8, spec
        )
        assert (
            statistical.leakage_energy_j > nominal.leakage_energy_j
        )
        assert statistical.switching_energy_j == pytest.approx(
            nominal.switching_energy_j
        )

    def test_validation(self, ring, spec):
        with pytest.raises(OptimizationError, match="positive"):
            ring.statistical_energy_per_cycle(0.8, 0.2, -1.0, spec)


class TestNominalEquivalence:
    def test_locus_sweep_optimum_bit_identical(self, ring, target):
        seed_style = FixedThroughputOptimizer(ring, cycle_stages=22)
        threaded = FixedThroughputOptimizer(
            ring, cycle_stages=22, variation=None
        )
        vts = [0.05 + 0.05 * i for i in range(6)]
        assert seed_style.sweep(vts, target) == threaded.sweep(
            vts, target
        )
        assert seed_style.optimum(
            target, vt_bounds=(0.05, 0.45)
        ) == threaded.optimum(target, vt_bounds=(0.05, 0.45))

    def test_statistical_optimum_spends_more_energy(self, ring, target):
        nominal = FixedThroughputOptimizer(ring, cycle_stages=22)
        statistical = FixedThroughputOptimizer(
            ring, cycle_stages=22,
            variation=VariationSpec(n_samples=40),
        )
        best_nom = nominal.optimum(target, vt_bounds=(0.05, 0.45))
        best_stat = statistical.optimum(target, vt_bounds=(0.05, 0.45))
        assert isinstance(best_stat, StatisticalOperatingPoint)
        # Guaranteeing the p99 corner costs energy over the nominal
        # optimum (higher supply at whatever V_T the search picks).
        assert (
            best_stat.energy_per_cycle_j > best_nom.energy_per_cycle_j
        )


class TestModuleYieldSolve:
    @pytest.fixture(scope="class")
    def module_optimizer(self):
        from repro.circuits.builders import ripple_carry_adder
        from repro.power.optimizer import ModuleThroughputOptimizer
        from repro.switchsim.simulator import SwitchLevelSimulator
        from repro.switchsim.stimulus import random_bus_vectors

        technology = soi_low_vt()
        adder = ripple_carry_adder(4)
        report = SwitchLevelSimulator(adder, technology, 1.0).run_vectors(
            random_bus_vectors({"a": 4, "b": 4}, 30, seed=0)
        )
        return ModuleThroughputOptimizer(adder, technology, report)

    @pytest.fixture(scope="class")
    def module_target(self, module_optimizer):
        base_vt = module_optimizer.technology.transistors.nmos.vt0
        return 3.0 * module_optimizer.delay(1.0, base_vt)

    def test_order_statistic_shortcut_is_exact(self, module_optimizer):
        # The shortcut evaluates STA at only the two bracketing shift
        # order statistics; because STA delay is monotone in the
        # global shift, that must equal the full-vector percentile
        # bit-for-bit.
        spec = VariationSpec(
            percentile=97.0, vt_sigma=0.03, n_samples=41, seed=3
        )
        shifts = spec.draw_shifts()
        base = module_optimizer._shift(0.2)
        full = [
            module_optimizer._delay_at_shift(0.7, base + s)
            for s in shifts
        ]
        assert module_optimizer._delay_percentile(
            0.7, 0.2, sorted(shifts), 97.0
        ) == _percentile(full, 97.0)

    def test_guard_band_over_nominal(
        self, module_optimizer, module_target
    ):
        nominal = module_optimizer.solve_vdd_for_delay(
            module_target, 0.2
        )
        statistical = module_optimizer.solve_vdd_for_yield(
            module_target, 0.2, n_samples=40
        )
        assert statistical > nominal

    def test_statistical_locus_point(
        self, module_optimizer, module_target
    ):
        from repro.power.optimizer import ModuleThroughputOptimizer

        statistical = ModuleThroughputOptimizer(
            module_optimizer.netlist,
            module_optimizer.technology,
            module_optimizer.report,
            variation=VariationSpec(n_samples=40),
        )
        point = statistical.locus_point(0.2, module_target)
        assert isinstance(point, StatisticalOperatingPoint)
        assert point.delay_percentile_s > point.stage_delay_s
        assert point.leakage_amplification > 1.0
        nominal_point = module_optimizer.locus_point(0.2, module_target)
        assert point.vdd > nominal_point.vdd

    def test_nominal_module_parity(
        self, module_optimizer, module_target
    ):
        from repro.power.optimizer import ModuleThroughputOptimizer

        threaded = ModuleThroughputOptimizer(
            module_optimizer.netlist,
            module_optimizer.technology,
            module_optimizer.report,
            variation=None,
        )
        assert threaded.locus_point(
            0.2, module_target
        ) == module_optimizer.locus_point(0.2, module_target)


class TestFlowThreading:
    def test_flow_carries_variation_into_optimizer(self, target):
        from repro.core.flow import LowVoltageDesignFlow

        spec = VariationSpec(n_samples=40)
        flow = LowVoltageDesignFlow(
            technology=soi_low_vt(), variation=spec
        )
        optimizer = flow.throughput_optimizer(stages=11)
        assert optimizer.variation is spec
        assert optimizer.cycle_stages == 22
        point = optimizer.locus_point(0.2, target)
        assert isinstance(point, StatisticalOperatingPoint)

    def test_flow_nominal_parity(self, ring, target):
        from repro.core.flow import LowVoltageDesignFlow

        flow = LowVoltageDesignFlow(technology=soi_low_vt())
        best_flow = flow.optimize_throughput(
            target, stages=11, vt_bounds=(0.05, 0.45)
        )
        seed_style = FixedThroughputOptimizer(
            RingOscillatorModel(soi_low_vt(), stages=11),
            cycle_stages=22,
        )
        assert best_flow == seed_style.optimum(
            target, vt_bounds=(0.05, 0.45)
        )

    def test_flow_rejects_bad_variation(self):
        from repro.core.flow import LowVoltageDesignFlow
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="VariationSpec"):
            LowVoltageDesignFlow(variation=0.99)
