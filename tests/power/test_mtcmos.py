"""Unit tests for MTCMOS sleep-transistor sizing."""

import pytest

from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import mtcmos_technology, soi_low_vt
from repro.errors import OptimizationError
from repro.power.energy import ModuleEnergyParameters, e_soias, e_soias_gated
from repro.power.mtcmos import SleepTransistorSizer, estimate_peak_current


@pytest.fixture(scope="module")
def tech():
    return mtcmos_technology()


@pytest.fixture(scope="module")
def sizer(tech):
    return SleepTransistorSizer(
        tech, peak_current_a=3e-3, vdd=1.0, logic_width_um=500.0
    )


class TestPeakCurrent:
    def test_positive_and_scales_with_netlist(self, tech):
        small = estimate_peak_current(ripple_carry_adder(4), tech, 1.0)
        large = estimate_peak_current(ripple_carry_adder(16), tech, 1.0)
        assert 0.0 < small < large

    def test_simultaneity_scales_linearly(self, tech):
        adder = ripple_carry_adder(8)
        half = estimate_peak_current(adder, tech, 1.0, simultaneity=0.1)
        full = estimate_peak_current(adder, tech, 1.0, simultaneity=0.2)
        assert full == pytest.approx(2.0 * half)

    def test_validation(self, tech):
        with pytest.raises(OptimizationError):
            estimate_peak_current(
                ripple_carry_adder(4), tech, 1.0, simultaneity=0.0
            )


class TestElectricalPieces:
    def test_droop_inverse_in_width(self, sizer):
        assert sizer.virtual_rail_droop(200.0) == pytest.approx(
            0.5 * sizer.virtual_rail_droop(100.0)
        )

    def test_delay_penalty_decreases_with_width(self, sizer):
        penalties = [
            sizer.delay_penalty(w) for w in (50.0, 100.0, 400.0, 1600.0)
        ]
        assert penalties == sorted(penalties, reverse=True)
        assert penalties[-1] > 0.0

    def test_huge_droop_gives_infinite_penalty(self, sizer):
        assert sizer.delay_penalty(0.1) == float("inf")

    def test_standby_leakage_linear_in_width(self, sizer):
        assert sizer.standby_leakage(200.0) == pytest.approx(
            2.0 * sizer.standby_leakage(100.0)
        )

    def test_sleep_device_leaks_far_less_than_logic(self, sizer, tech):
        # The whole point: high-V_T sleep off-current << low-V_T logic.
        logic_leak = tech.nmos(100.0).off_current(1.0)
        assert sizer.standby_leakage(100.0) < logic_leak / 100.0


class TestSizing:
    def test_meets_penalty_budget(self, sizer):
        solution = sizer.size_for_penalty(0.05)
        assert solution.delay_penalty <= 0.05 * 1.001

    def test_tighter_budget_needs_wider_device(self, sizer):
        tight = sizer.size_for_penalty(0.02)
        loose = sizer.size_for_penalty(0.10)
        assert tight.sleep_width_um > loose.sleep_width_um
        assert tight.standby_leakage_a > loose.standby_leakage_a

    def test_area_overhead_reported(self, sizer):
        solution = sizer.size_for_penalty(0.05)
        assert solution.area_overhead_fraction == pytest.approx(
            solution.sleep_width_um / 500.0
        )

    def test_control_capacitance_positive(self, sizer):
        assert sizer.size_for_penalty(0.05).sleep_gate_capacitance_f > 0.0

    def test_impossible_budget_rejected(self, sizer):
        with pytest.raises(OptimizationError, match="penalty"):
            sizer.size_for_penalty(1e-9, width_bounds_um=(0.5, 10.0))

    def test_non_mtcmos_technology_rejected(self):
        with pytest.raises(OptimizationError, match="sleep"):
            SleepTransistorSizer(soi_low_vt(), 1e-3, 1.0)

    def test_bad_parameters_rejected(self, tech):
        with pytest.raises(OptimizationError):
            SleepTransistorSizer(tech, 0.0, 1.0)
        with pytest.raises(OptimizationError):
            SleepTransistorSizer(tech, 1e-3, 1.0).size_for_penalty(0.0)


class TestGatedEnergyModel:
    @pytest.fixture
    def module(self):
        return ModuleEnergyParameters(
            name="adder",
            switched_capacitance_f=300e-15,
            leakage_low_vt_a=5e-7,
            leakage_high_vt_a=1e-10,
            back_gate_capacitance_f=250e-15,
            back_gate_swing_v=3.0,
        )

    def test_reduces_to_eq4_without_hysteresis(self, module):
        gated = e_soias_gated(module, 0.3, 0.3, 0.05, 1.0, 1e-6)
        plain = e_soias(module, 0.3, 0.05, 1.0, 1e-6)
        assert gated == pytest.approx(plain)

    def test_keep_alive_adds_leakage(self, module):
        lazy = e_soias_gated(module, 0.3, 0.6, 0.01, 1.0, 1e-6)
        eager = e_soias_gated(module, 0.3, 0.3, 0.01, 1.0, 1e-6)
        assert lazy > eager

    def test_hysteresis_can_win_when_toggles_are_expensive(self, module):
        # Expensive control, cheap leakage: merging gaps pays off.
        eager = e_soias_gated(module, 0.3, 0.3, 0.10, 1.0, 1e-8)
        lazy = e_soias_gated(module, 0.3, 0.5, 0.01, 1.0, 1e-8)
        assert lazy < eager

    def test_powered_fraction_bounds_enforced(self, module):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="powered_fraction"):
            e_soias_gated(module, 0.5, 0.4, 0.1, 1.0, 1e-6)
