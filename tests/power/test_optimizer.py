"""Unit tests for the fixed-throughput optimizer (Figs. 3-4 machinery)."""

import pytest

from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel


@pytest.fixture(scope="module")
def ring():
    return RingOscillatorModel(soi_low_vt(), stages=101)


@pytest.fixture(scope="module")
def target(ring):
    # A mid-range delay target: achievable over a wide V_T span.
    return 2.0 * ring.stage_delay(1.0, 0.2)


@pytest.fixture(scope="module")
def optimizer(ring):
    return FixedThroughputOptimizer(ring, cycle_stages=202)


class TestRingModel:
    def test_stage_delay_falls_with_vdd(self, ring):
        delays = [ring.stage_delay(0.4 + 0.2 * i, 0.2) for i in range(6)]
        assert delays == sorted(delays, reverse=True)

    def test_stage_delay_rises_with_vt(self, ring):
        assert ring.stage_delay(0.8, 0.3) > ring.stage_delay(0.8, 0.1)

    def test_oscillation_period(self, ring):
        assert ring.oscillation_period(1.0, 0.2) == pytest.approx(
            2 * 101 * ring.stage_delay(1.0, 0.2)
        )

    def test_even_stage_count_rejected(self):
        with pytest.raises(OptimizationError):
            RingOscillatorModel(soi_low_vt(), stages=100)

    def test_bad_activity_rejected(self):
        with pytest.raises(OptimizationError):
            RingOscillatorModel(soi_low_vt(), activity=0.0)


class TestVddSolve:
    def test_solution_hits_target(self, ring, target):
        vdd = ring.solve_vdd_for_delay(target, vt=0.2)
        assert ring.stage_delay(vdd, 0.2) == pytest.approx(target, rel=1e-6)

    def test_fig3_vdd_falls_with_vt(self, ring, target):
        # The headline of Fig. 3: lower V_T allows lower V_DD at fixed
        # performance.
        vdds = [
            ring.solve_vdd_for_delay(target, vt)
            for vt in (0.1, 0.2, 0.3, 0.4)
        ]
        assert vdds == sorted(vdds)

    def test_fig3_slower_target_needs_less_vdd(self, ring, target):
        fast = ring.solve_vdd_for_delay(target, 0.25)
        slow = ring.solve_vdd_for_delay(2.0 * target, 0.25)
        assert slow < fast

    def test_unreachable_fast_target(self, ring):
        with pytest.raises(OptimizationError, match="unreachable"):
            ring.solve_vdd_for_delay(1e-15, vt=0.4)

    def test_slow_target_clamps_to_low_bound(self, ring):
        # A target the ring already meets at the minimum supply clamps
        # to the low bound (the shared semantics with
        # ModuleThroughputOptimizer) instead of raising.
        vdd = ring.solve_vdd_for_delay(1.0, vt=0.05)
        assert vdd == pytest.approx(ring.technology.min_vdd)
        assert ring.stage_delay(vdd, 0.05) < 1.0

    def test_bad_bounds_rejected(self, ring, target):
        with pytest.raises(OptimizationError, match="bounds"):
            ring.solve_vdd_for_delay(target, 0.2, vdd_bounds=(1.0, 0.5))


class TestEnergyModel:
    def test_energy_components_positive(self, ring):
        point = ring.energy_per_cycle(0.8, 0.2, 1e-8)
        assert point.switching_energy_j > 0.0
        assert point.leakage_energy_j > 0.0
        assert point.energy_per_cycle_j == pytest.approx(
            point.switching_energy_j + point.leakage_energy_j
        )

    def test_leakage_scales_with_cycle_time(self, ring):
        short = ring.energy_per_cycle(0.8, 0.2, 1e-9)
        long = ring.energy_per_cycle(0.8, 0.2, 1e-6)
        assert long.leakage_energy_j == pytest.approx(
            1000.0 * short.leakage_energy_j
        )
        assert long.switching_energy_j == pytest.approx(
            short.switching_energy_j
        )

    def test_lower_vt_leaks_more(self, ring):
        high = ring.energy_per_cycle(0.6, 0.35, 1e-7)
        low = ring.energy_per_cycle(0.6, 0.05, 1e-7)
        assert low.leakage_energy_j > 100.0 * high.leakage_energy_j


class TestModuleThroughputOptimizer:
    @pytest.fixture(scope="class")
    def module_optimizer(self):
        from repro.circuits.builders import ripple_carry_adder
        from repro.power.optimizer import ModuleThroughputOptimizer
        from repro.switchsim.simulator import SwitchLevelSimulator
        from repro.switchsim.stimulus import random_bus_vectors

        technology = soi_low_vt()
        adder = ripple_carry_adder(8)
        report = SwitchLevelSimulator(adder, technology, 1.0).run_vectors(
            random_bus_vectors({"a": 8, "b": 8}, 60, seed=0)
        )
        return ModuleThroughputOptimizer(adder, technology, report)

    @pytest.fixture(scope="class")
    def module_target(self, module_optimizer):
        base_vt = module_optimizer.technology.transistors.nmos.vt0
        return 3.0 * module_optimizer.delay(1.0, base_vt)

    def test_solved_vdd_hits_target(self, module_optimizer, module_target):
        vdd = module_optimizer.solve_vdd_for_delay(module_target, 0.25)
        assert module_optimizer.delay(vdd, 0.25) == pytest.approx(
            module_target, rel=1e-5
        )

    def test_locus_vdd_rises_with_vt(self, module_optimizer, module_target):
        points = module_optimizer.sweep(
            [0.1, 0.2, 0.3, 0.4], module_target
        )
        vdds = [p.vdd for p in points]
        assert vdds == sorted(vdds)

    def test_low_utilization_has_interior_optimum(
        self, module_optimizer, module_target
    ):
        points = module_optimizer.sweep(
            [0.05 + 0.05 * i for i in range(8)],
            module_target,
            utilization=0.02,
        )
        energies = [p.energy_per_cycle_j for p in points]
        best = min(range(len(energies)), key=energies.__getitem__)
        assert 0 < best < len(energies) - 1

    def test_lower_utilization_raises_optimal_vt(
        self, module_optimizer, module_target
    ):
        busy = module_optimizer.optimum(module_target, utilization=1.0)
        idle = module_optimizer.optimum(module_target, utilization=0.02)
        assert idle.vt > busy.vt

    def test_optimum_vdd_below_one_volt(
        self, module_optimizer, module_target
    ):
        best = module_optimizer.optimum(module_target, utilization=0.1)
        assert best.vdd < 1.0

    def test_validation(self, module_optimizer, module_target):
        with pytest.raises(OptimizationError):
            module_optimizer.solve_vdd_for_delay(-1.0, 0.2)
        with pytest.raises(OptimizationError):
            module_optimizer.locus_point(0.2, module_target, utilization=0.0)
        with pytest.raises(OptimizationError):
            module_optimizer.sweep([], module_target)
        with pytest.raises(OptimizationError, match="unreachable"):
            module_optimizer.solve_vdd_for_delay(1e-18, 0.4)


class TestFixedThroughputSweep:
    def test_sweep_produces_fig4_curve(self, optimizer, target):
        points = optimizer.sweep(
            [0.05 + 0.05 * i for i in range(8)], target
        )
        assert len(points) >= 5
        # Supply rises with V_T along the locus (Fig. 3 embedded).
        vdds = [p.vdd for p in points]
        assert vdds == sorted(vdds)

    def test_leakage_fraction_falls_with_vt(self, optimizer, target):
        points = optimizer.sweep([0.05, 0.15, 0.3], target)
        fractions = [p.leakage_fraction for p in points]
        assert fractions == sorted(fractions, reverse=True)

    def test_optimum_is_interior_or_boundary_minimum(
        self, optimizer, target
    ):
        best = optimizer.optimum(target, vt_bounds=(0.02, 0.5))
        sampled = optimizer.sweep(
            [0.02 + 0.02 * i for i in range(24)], target
        )
        assert best.energy_per_cycle_j <= 1.02 * min(
            p.energy_per_cycle_j for p in sampled
        )

    def test_fig4_optimum_vdd_below_1v(self, optimizer, target):
        # The paper's headline: the optimum supply is well below 1 V.
        best = optimizer.optimum(target, vt_bounds=(0.02, 0.5))
        assert best.vdd < 1.0

    def test_lower_activity_raises_optimal_vt(self, target):
        # Paper: "a circuit which has very low switching activity will
        # require a high-threshold voltage".
        busy = FixedThroughputOptimizer(
            RingOscillatorModel(soi_low_vt(), stages=101, activity=1.0),
            cycle_stages=202,
        ).optimum(target, vt_bounds=(0.02, 0.5))
        idle = FixedThroughputOptimizer(
            RingOscillatorModel(soi_low_vt(), stages=101, activity=0.05),
            cycle_stages=202,
        ).optimum(target, vt_bounds=(0.02, 0.5))
        assert idle.vt > busy.vt

    def test_empty_sweep_rejected(self, optimizer, target):
        with pytest.raises(OptimizationError):
            optimizer.sweep([], target)

    def test_all_infeasible_sweep_rejected(self, optimizer):
        with pytest.raises(OptimizationError, match="no feasible"):
            optimizer.sweep([0.1, 0.2], 1e-18)

    def test_infeasible_optimum_rejected(self, optimizer):
        with pytest.raises(OptimizationError, match="infeasible"):
            optimizer.optimum(1e-18)


class TestGoldenTieBreaking:
    def test_flat_plateau_ties_break_to_lowest_vt(self):
        from repro.power.optimizer import _bracketed_golden_minimum

        # Every candidate has the same energy: the explicit key must
        # resolve the tie to the lowest V_T, not to float luck in
        # tuple comparison.
        assert _bracketed_golden_minimum(lambda vt: 1.0, 0.1, 0.5, 1e-3) == 0.1

    def test_degenerate_bracket_on_entry(self):
        from repro.power.optimizer import _bracketed_golden_minimum

        # b - a <= tolerance before the first golden iteration: the
        # refinement loop never runs and only the coarse-scan
        # candidates compete.
        result = _bracketed_golden_minimum(
            lambda vt: (vt - 0.05) ** 2, 0.0, 1e-4, 1e-3
        )
        assert 0.0 <= result <= 1e-4
        # A plateau inside the degenerate bracket still resolves to
        # the lowest V_T.
        assert (
            _bracketed_golden_minimum(lambda vt: 7.0, 0.3, 0.3005, 1e-3)
            == 0.3
        )

    def test_degenerate_vt_bounds_through_optimum(self, optimizer, target):
        # End-to-end: bounds tighter than the tolerance-scaled bracket
        # still produce a feasible point inside them.
        best = optimizer.optimum(target, vt_bounds=(0.2, 0.201))
        assert 0.2 <= best.vt <= 0.201
        assert best.energy_per_cycle_j > 0.0


class TestModuleSweepSkipInfeasible:
    @pytest.fixture(scope="class")
    def small_module_optimizer(self):
        from repro.circuits.builders import ripple_carry_adder
        from repro.power.optimizer import ModuleThroughputOptimizer
        from repro.switchsim.simulator import SwitchLevelSimulator
        from repro.switchsim.stimulus import random_bus_vectors

        technology = soi_low_vt()
        adder = ripple_carry_adder(4)
        report = SwitchLevelSimulator(adder, technology, 1.0).run_vectors(
            random_bus_vectors({"a": 4, "b": 4}, 30, seed=0)
        )
        return ModuleThroughputOptimizer(adder, technology, report)

    @pytest.fixture(scope="class")
    def small_module_target(self, small_module_optimizer):
        base_vt = (
            small_module_optimizer.technology.transistors.nmos.vt0
        )
        return 3.0 * small_module_optimizer.delay(1.0, base_vt)

    def test_config_errors_surface(
        self, small_module_optimizer, small_module_target
    ):
        # Regression: the bare ``continue`` used to swallow *every*
        # OptimizationError, so a bad utilization surfaced only as a
        # misleading "no feasible V_T in the sweep".
        with pytest.raises(OptimizationError, match="utilization"):
            small_module_optimizer.sweep(
                [0.1, 0.2],
                small_module_target,
                utilization=0.0,
                skip_infeasible=False,
            )

    def test_unreachable_target_surfaces(self, small_module_optimizer):
        with pytest.raises(OptimizationError, match="unreachable"):
            small_module_optimizer.sweep(
                [0.25], 1e-18, skip_infeasible=False
            )

    def test_default_still_skips_infeasible(
        self, small_module_optimizer, small_module_target
    ):
        points = small_module_optimizer.sweep(
            [0.25], small_module_target
        )
        assert len(points) == 1
