"""Unit tests for the netlist power estimator."""

import pytest

from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.errors import AnalysisError
from repro.power.estimator import PowerEstimator
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import counting_bus_vectors, random_bus_vectors


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def adder():
    return ripple_carry_adder(8)


@pytest.fixture(scope="module")
def estimator(adder, tech):
    return PowerEstimator(adder, tech)


@pytest.fixture(scope="module")
def report(adder, tech):
    vectors = random_bus_vectors({"a": 8, "b": 8}, 150, seed=33)
    return SwitchLevelSimulator(adder, tech, 1.0).run_vectors(vectors)


VDD = 1.0
FREQ = 1e6


class TestSwitching:
    def test_positive_and_linear_in_frequency(self, estimator, report):
        p1 = estimator.switching_power(report, VDD, FREQ)
        p2 = estimator.switching_power(report, VDD, 2 * FREQ)
        assert p1 > 0.0
        assert p2 == pytest.approx(2.0 * p1)

    def test_correlated_inputs_use_less(self, adder, tech, estimator, report):
        vectors = counting_bus_vectors(
            "b", 8, 150, fixed_buses={"a": 85}, fixed_widths={"a": 8}
        )
        quiet = SwitchLevelSimulator(adder, tech, VDD).run_vectors(vectors)
        assert estimator.switching_power(
            quiet, VDD, FREQ
        ) < estimator.switching_power(report, VDD, FREQ)


class TestLeakage:
    def test_scales_with_gate_count(self, tech):
        small = PowerEstimator(ripple_carry_adder(4), tech)
        large = PowerEstimator(ripple_carry_adder(16), tech)
        assert large.leakage_current(VDD) > 3.0 * small.leakage_current(VDD)

    def test_vt_shift_suppresses(self, estimator):
        active = estimator.leakage_power(VDD)
        standby = estimator.leakage_power(VDD, vt_shift=0.264)
        assert active > 1e3 * standby

    def test_vdd_validation(self, estimator):
        with pytest.raises(AnalysisError):
            estimator.leakage_current(0.0)


class TestShortCircuit:
    def test_small_fraction_of_switching(self, estimator, report):
        # Paper Section 2: with matched edges short-circuit stays below
        # ~10 % of total power.
        switching = estimator.switching_power(report, VDD, FREQ)
        short = estimator.short_circuit_power(report, VDD, FREQ)
        assert 0.0 <= short < 0.15 * switching

    def test_zero_at_overlap_free_supply(self, adder, report):
        # V_DD below V_Tn + V_Tp: crowbar path impossible.
        tech = soi_low_vt(vt0=0.3)
        estimator = PowerEstimator(adder, tech)
        assert estimator.short_circuit_power(report, 0.55, FREQ) == 0.0


class TestBreakdown:
    def test_components_sum(self, estimator, report):
        breakdown = estimator.breakdown(report, VDD, FREQ)
        assert breakdown.total_w == pytest.approx(
            breakdown.switching_w
            + breakdown.short_circuit_w
            + breakdown.leakage_w
        )

    def test_switching_dominates_when_clocked_near_capability(
        self, estimator, report
    ):
        # Paper: "in conventional process technology using proper
        # circuit design, the switching component dominates".  For the
        # calibrated low-V_T SOI process that holds when the module is
        # clocked near its capability (100 MHz+); at 1 MHz the same
        # module is leakage-limited — the paper's low-voltage premise.
        fast = estimator.breakdown(report, VDD, 1e8)
        assert fast.fraction("switching") > 0.5
        slow = estimator.breakdown(report, VDD, 1e6)
        assert slow.fraction("leakage") > 0.5

    def test_leakage_dominates_when_idle_at_low_vt(
        self, adder, tech, estimator
    ):
        # An idle module (no transitions) at low V_T burns leakage only.
        vectors = [
            {f"a[{i}]": 0 for i in range(8)} | {f"b[{i}]": 0 for i in range(8)}
        ] * 3
        quiet = SwitchLevelSimulator(adder, tech, VDD).run_vectors(vectors)
        breakdown = estimator.breakdown(quiet, VDD, FREQ)
        assert breakdown.fraction("leakage") > 0.9
