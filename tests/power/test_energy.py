"""Unit tests for the Eq. 3/4 energy models and their variants."""

import pytest

from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt, soias_technology
from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_mtcmos,
    e_soi,
    e_soias,
    e_vtcmos,
    energy_ratio_soias_vs_soi,
    module_parameters_from_activity,
)
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors


@pytest.fixture
def module():
    return ModuleEnergyParameters(
        name="adder",
        switched_capacitance_f=500e-15,
        leakage_low_vt_a=1e-7,
        leakage_high_vt_a=1e-11,
        back_gate_capacitance_f=2e-12,
        back_gate_swing_v=3.0,
    )


VDD = 1.0
T_CYCLE = 1e-6  # 1 MHz, the paper's operating class


class TestEq3:
    def test_terms_add_up(self, module):
        energy = e_soi(module, fga=0.5, vdd=VDD, t_cycle_s=T_CYCLE)
        switching = 0.5 * 500e-15 * VDD * VDD
        leak = 1e-7 * VDD * T_CYCLE
        assert energy == pytest.approx(switching + leak)

    def test_leakage_burns_even_when_idle(self, module):
        idle = e_soi(module, fga=0.0, vdd=VDD, t_cycle_s=T_CYCLE)
        assert idle == pytest.approx(1e-7 * VDD * T_CYCLE)

    def test_validation(self, module):
        with pytest.raises(AnalysisError):
            e_soi(module, fga=1.5, vdd=VDD, t_cycle_s=T_CYCLE)
        with pytest.raises(AnalysisError):
            e_soi(module, fga=0.5, vdd=0.0, t_cycle_s=T_CYCLE)


class TestEq4:
    def test_terms_add_up(self, module):
        energy = e_soias(
            module, fga=0.5, bga=0.1, vdd=VDD, t_cycle_s=T_CYCLE
        )
        switching = 0.5 * 500e-15
        back_gate = 0.1 * 2e-12 * 9.0
        active_leak = 0.5 * 1e-7 * T_CYCLE
        standby_leak = 0.5 * 1e-11 * T_CYCLE
        assert energy == pytest.approx(
            switching + back_gate + active_leak + standby_leak
        )

    def test_idle_module_wins_big(self, module):
        # fga -> 0: SOIAS retains only high-V_T leakage; SOI leaks at
        # low V_T continuously.
        soi = e_soi(module, fga=0.001, vdd=VDD, t_cycle_s=T_CYCLE)
        soias = e_soias(
            module, fga=0.001, bga=0.0005, vdd=VDD, t_cycle_s=T_CYCLE
        )
        assert soias < 0.25 * soi

    def test_busy_module_pays_overhead(self, module):
        # fga = 1 with bga > 0: SOIAS adds back-gate energy and wins
        # nothing on leakage.
        soi = e_soi(module, fga=1.0, vdd=VDD, t_cycle_s=T_CYCLE)
        soias = e_soias(
            module, fga=1.0, bga=0.5, vdd=VDD, t_cycle_s=T_CYCLE
        )
        assert soias > soi

    def test_bga_above_fga_rejected(self, module):
        with pytest.raises(AnalysisError, match="bga"):
            e_soias(module, fga=0.1, bga=0.2, vdd=VDD, t_cycle_s=T_CYCLE)

    def test_ratio_below_one_at_low_duty(self, module):
        ratio = energy_ratio_soias_vs_soi(
            module, fga=0.01, bga=0.001, vdd=VDD, t_cycle_s=T_CYCLE
        )
        assert ratio < 1.0


class TestVariants:
    def test_mtcmos_control_charges_to_vdd(self, module):
        energy = e_mtcmos(
            module, fga=0.5, bga=0.1, vdd=VDD, t_cycle_s=T_CYCLE
        )
        soias = e_soias(
            module, fga=0.5, bga=0.1, vdd=VDD, t_cycle_s=T_CYCLE
        )
        # Same algebra, but control swing is V_DD = 1 V < 3 V back-gate
        # swing, so MTCMOS control overhead is smaller here.
        assert energy < soias

    def test_mtcmos_custom_control_cap(self, module):
        small = e_mtcmos(
            module, 0.5, 0.1, VDD, T_CYCLE,
            sleep_control_capacitance_f=1e-13,
        )
        large = e_mtcmos(
            module, 0.5, 0.1, VDD, T_CYCLE,
            sleep_control_capacitance_f=1e-11,
        )
        assert small < large

    def test_vtcmos_large_swing_is_expensive(self, module):
        cheap = e_vtcmos(
            module, 0.5, 0.1, VDD, T_CYCLE,
            well_capacitance_f=5e-12, body_bias_swing_v=1.0,
        )
        costly = e_vtcmos(
            module, 0.5, 0.1, VDD, T_CYCLE,
            well_capacitance_f=5e-12, body_bias_swing_v=4.0,
        )
        # Quadratic in swing: 16x on the control term.
        assert costly > cheap

    def test_vtcmos_validation(self, module):
        with pytest.raises(AnalysisError):
            e_vtcmos(
                module, 0.5, 0.1, VDD, T_CYCLE,
                well_capacitance_f=-1.0, body_bias_swing_v=1.0,
            )


class TestParameterValidation:
    def test_high_vt_leakage_cannot_exceed_low(self):
        with pytest.raises(AnalysisError, match="high-V_T"):
            ModuleEnergyParameters(
                name="bad",
                switched_capacitance_f=1e-13,
                leakage_low_vt_a=1e-12,
                leakage_high_vt_a=1e-9,
                back_gate_capacitance_f=0.0,
                back_gate_swing_v=0.0,
            )

    def test_negative_field_rejected(self):
        with pytest.raises(AnalysisError):
            ModuleEnergyParameters(
                name="bad",
                switched_capacitance_f=-1.0,
                leakage_low_vt_a=0.0,
                leakage_high_vt_a=0.0,
                back_gate_capacitance_f=0.0,
                back_gate_swing_v=0.0,
            )

    def test_with_back_gate_swing(self, module):
        assert module.with_back_gate_swing(1.5).back_gate_swing_v == 1.5


class TestExtractionFromActivity:
    @pytest.fixture(scope="class")
    def extracted(self):
        technology = soias_technology()
        adder = ripple_carry_adder(8)
        vectors = random_bus_vectors({"a": 8, "b": 8}, 100, seed=21)
        report = SwitchLevelSimulator(
            adder, technology, 1.0,
            vt_shift=technology.back_gate.vt_shift_at(3.0),
        ).run_vectors(vectors)
        return module_parameters_from_activity(
            adder, report, technology, vdd=1.0
        )

    def test_fields_positive(self, extracted):
        assert extracted.switched_capacitance_f > 0.0
        assert extracted.leakage_low_vt_a > 0.0
        assert extracted.back_gate_capacitance_f > 0.0
        assert extracted.back_gate_swing_v == pytest.approx(3.0)

    def test_leakage_corners_ordered(self, extracted):
        # Low (active) V_T leaks orders of magnitude more than the
        # standby corner.
        assert extracted.leakage_low_vt_a > 100.0 * extracted.leakage_high_vt_a

    def test_non_backgated_extraction(self):
        technology = soi_low_vt()
        adder = ripple_carry_adder(4)
        vectors = random_bus_vectors({"a": 4, "b": 4}, 50, seed=5)
        report = SwitchLevelSimulator(adder, technology, 1.0).run_vectors(
            vectors
        )
        module = module_parameters_from_activity(
            adder, report, technology, vdd=1.0
        )
        assert module.back_gate_capacitance_f == 0.0
        assert module.leakage_low_vt_a == pytest.approx(
            module.leakage_high_vt_a
        )
