"""Tests for slack-driven gate downsizing."""

import pytest

from repro.circuits.builders import carry_select_adder, ripple_carry_adder
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError, OptimizationError
from repro.power.sizing import GateSizingOptimizer


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def optimizer(tech):
    return GateSizingOptimizer(carry_select_adder(12, 4), tech, vdd=1.0)


class TestSizedTiming:
    def test_downsizing_a_fanout_gate_speeds_its_driver(self, tech):
        # Shrinking a load reduces the driver's delay: the sized STA
        # must see through the fanout.
        from repro.circuits.netlist import Netlist
        from repro.tech.cells import standard_cells

        cells = standard_cells()
        netlist = Netlist("chain")
        netlist.add_input("in")
        netlist.add_gate(cells["INV"], ["in"], "x", name="driver")
        netlist.add_gate(cells["INV"], ["x"], "y", name="load")
        netlist.add_output("x")
        netlist.add_output("y")
        analyzer = StaticTimingAnalyzer(tech)
        base = analyzer.analyze(netlist, 1.0).arrival_times["x"]
        resized = analyzer.analyze(
            netlist, 1.0, per_instance_size_factors={"load": 0.5}
        ).arrival_times["x"]
        assert resized < base

    def test_downsizing_everything_slows_endpoints(self, tech):
        netlist = ripple_carry_adder(8)
        analyzer = StaticTimingAnalyzer(tech)
        base = analyzer.analyze(netlist, 1.0).delay_s
        # Uniform shrink: internal load ratios unchanged but wire and
        # register loads don't shrink, so paths get slower.
        sizes = {name: 0.3 for name in netlist.instances}
        resized = analyzer.analyze(
            netlist, 1.0, per_instance_size_factors=sizes
        ).delay_s
        assert resized > base

    def test_invalid_factors_rejected(self, tech):
        netlist = ripple_carry_adder(4)
        analyzer = StaticTimingAnalyzer(tech)
        with pytest.raises(NetlistError, match="positive"):
            analyzer.analyze(
                netlist, 1.0,
                per_instance_size_factors={
                    next(iter(netlist.instances)): 0.0
                },
            )
        with pytest.raises(NetlistError, match="unknown"):
            analyzer.analyze(
                netlist, 1.0, per_instance_size_factors={"ghost": 0.5}
            )


class TestOptimizer:
    def test_meets_delay_budget(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert result.delay_s <= result.baseline_delay_s * 1.0001

    def test_reduces_capacitance_and_leakage(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert result.capacitance_reduction > 1.5
        assert result.leakage_reduction > 1.5
        assert result.downsized_gates > 0

    def test_factors_come_from_the_allowed_set(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert set(result.size_factors.values()) <= set(
            optimizer.allowed_factors
        )

    def test_solution_is_verifiable(self, optimizer):
        result = optimizer.optimize(delay_budget=1.0)
        assert optimizer.delay(result.size_factors) == pytest.approx(
            result.delay_s
        )
        assert optimizer.leakage(result.size_factors) == pytest.approx(
            result.leakage_a
        )

    def test_looser_budget_downsizes_at_least_as_much(self, optimizer):
        tight = optimizer.optimize(delay_budget=1.0)
        loose = optimizer.optimize(delay_budget=1.2)
        assert loose.input_capacitance_f <= tight.input_capacitance_f * 1.01

    def test_validation(self, tech):
        netlist = ripple_carry_adder(4)
        with pytest.raises(OptimizationError):
            GateSizingOptimizer(netlist, tech, vdd=0.0)
        with pytest.raises(OptimizationError):
            GateSizingOptimizer(netlist, tech, 1.0, allowed_factors=())
        with pytest.raises(OptimizationError):
            GateSizingOptimizer(
                netlist, tech, 1.0, allowed_factors=(1.5,)
            )
        with pytest.raises(OptimizationError):
            GateSizingOptimizer(netlist, tech, 1.0).optimize(0.5)
