"""Integration tests for the end-to-end design flow (Section 5)."""

import functools

import pytest

from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import (
    continuous_scenario,
    standard_datapath,
    xserver_scenario,
)
from repro.errors import AnalysisError
from repro.isa.profiler import profile_program
from repro.isa.workloads import espresso_like, idea, li_like


@pytest.fixture(scope="module")
def flow():
    return LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)


@pytest.fixture(scope="module")
def datapath():
    return standard_datapath(width=8, stimulus_vectors=60)


@pytest.fixture(scope="module")
def idea_program():
    return idea.build_program(idea.random_blocks(4))


@pytest.fixture(scope="module")
def idea_evaluation(flow, datapath, idea_program):
    return flow.evaluate(
        idea_program, datapath, duty_cycle=xserver_scenario().duty_cycle
    )


class TestFlowConfiguration:
    def test_defaults_to_soias(self):
        assert LowVoltageDesignFlow().technology.is_back_gated

    def test_cycle_time(self, flow):
        assert flow.t_cycle_s == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            LowVoltageDesignFlow(vdd=0.0)


class TestStages:
    def test_profile_stage(self, flow, idea_program):
        profile = flow.profile(idea_program)
        assert profile.fga("multiplier") > 0.0

    def test_activity_stage(self, flow, datapath):
        unit = datapath["adder"]
        report = flow.unit_activity(unit.netlist, unit.vectors)
        assert report.mean_activity() > 0.0

    def test_module_parameter_stage(self, flow, datapath):
        unit = datapath["adder"]
        report = flow.unit_activity(unit.netlist, unit.vectors)
        module = flow.module_parameters(unit.netlist, report)
        assert module.switched_capacitance_f > 0.0
        assert module.back_gate_capacitance_f > 0.0


class TestEvaluation:
    def test_covers_all_units(self, idea_evaluation):
        assert set(idea_evaluation.units) == {
            "adder", "shifter", "multiplier",
        }

    def test_duty_cycle_recorded(self, idea_evaluation):
        assert idea_evaluation.duty_cycle == pytest.approx(0.2)

    def test_multiplier_saves_most_for_idea_on_xserver(
        self, idea_evaluation
    ):
        savings = idea_evaluation.savings_table()
        assert savings["multiplier"] > savings["adder"]

    def test_points_match_verdicts(self, idea_evaluation):
        for evaluation in idea_evaluation.units.values():
            assert evaluation.point.soias_wins == evaluation.verdicts[
                "soias"
            ].wins

    def test_unknown_unit_lookup_rejected(self, idea_evaluation):
        with pytest.raises(AnalysisError):
            idea_evaluation.unit("fpu")

    def test_xserver_beats_continuous_for_every_unit(
        self, flow, datapath, idea_program
    ):
        continuous = flow.evaluate(
            idea_program, datapath,
            duty_cycle=continuous_scenario().duty_cycle,
        )
        xserver = flow.evaluate(idea_program, datapath, duty_cycle=0.2)
        for name in datapath:
            assert (
                xserver.unit(name).soias_saving_percent
                >= continuous.unit(name).soias_saving_percent
            )


class TestFig10Acceptance:
    """The headline Fig. 10 shape criteria from DESIGN.md."""

    @pytest.fixture(scope="class")
    def session_savings(self, flow, datapath):
        profiles = [
            profile_program(espresso_like.build_program(32, 8)),
            profile_program(li_like.build_program(48, 30)),
            profile_program(idea.build_program(idea.random_blocks(6))),
        ]
        session = functools.reduce(
            lambda a, b: a.merged_with(b), profiles
        )

        def savings(duty):
            scaled = session.scaled_by_duty_cycle(duty)
            result = {}
            for name, unit in datapath.items():
                report = flow.unit_activity(unit.netlist, unit.vectors)
                module = flow.module_parameters(unit.netlist, report)
                verdict = flow.comparator(module).verdict(
                    "soias", scaled.fga(name), scaled.bga(name)
                )
                result[name] = verdict.saving_percent
            return result

        return savings(1.0), savings(0.2)

    def test_xserver_savings_ordered_like_paper(self, session_savings):
        # Paper: multiplier (97%) > shifter (81%) > adder (43%).
        _, xserver = session_savings
        assert (
            xserver["multiplier"] > xserver["shifter"] > xserver["adder"]
        )

    def test_xserver_magnitudes_in_paper_band(self, session_savings):
        _, xserver = session_savings
        assert xserver["multiplier"] > 90.0
        assert xserver["shifter"] > 60.0
        assert 20.0 < xserver["adder"] < 95.0

    def test_continuous_adder_near_breakeven(self, session_savings):
        # Paper: "for this situation, there is little advantage going
        # to the SOIAS technology" — the busiest unit sits near the
        # contour when the system never idles.
        continuous, _ = session_savings
        assert abs(continuous["adder"]) < 25.0

    def test_duty_cycle_moves_points_below_contour(self, session_savings):
        continuous, xserver = session_savings
        for name in ("adder", "shifter", "multiplier"):
            assert xserver[name] > continuous[name]
