"""Unit tests for the canned datapaths and scenarios."""

import pytest

from repro.core.scenarios import (
    DatapathUnit,
    Scenario,
    continuous_scenario,
    standard_datapath,
    xserver_scenario,
)
from repro.errors import AnalysisError


class TestScenarios:
    def test_xserver_duty(self):
        scenario = xserver_scenario()
        assert scenario.duty_cycle == pytest.approx(0.2)
        assert "X" in scenario.description or "idle" in scenario.description

    def test_continuous_duty(self):
        assert continuous_scenario().duty_cycle == 1.0

    def test_invalid_duty_rejected(self):
        with pytest.raises(AnalysisError):
            Scenario(name="bad", duty_cycle=0.0, description="")


class TestStandardDatapath:
    def test_units_match_profiler_names(self):
        units = standard_datapath(width=8, stimulus_vectors=10)
        assert set(units) == {"adder", "shifter", "multiplier"}

    def test_netlists_functional(self):
        units = standard_datapath(width=4, stimulus_vectors=10)
        adder = units["adder"].netlist
        values = adder.evaluate(
            {f"a[{i}]": 1 for i in range(4)} | {f"b[{i}]": 0 for i in range(4)}
        )
        assert values["sum[0]"] == 1

    def test_stimulus_drives_all_inputs(self):
        units = standard_datapath(width=8, stimulus_vectors=10)
        for unit in units.values():
            vector = unit.vectors[0]
            for net in unit.netlist.primary_inputs:
                assert net in vector, (unit.name, net)

    def test_non_power_of_two_width_rounds_shifter(self):
        units = standard_datapath(width=6, stimulus_vectors=10)
        # Shifter width rounds up to 8.
        assert len(units["shifter"].netlist.primary_outputs) == 8

    def test_width_validated(self):
        with pytest.raises(AnalysisError):
            standard_datapath(width=1)

    def test_too_few_vectors_rejected(self):
        with pytest.raises(AnalysisError, match="two stimulus"):
            DatapathUnit(
                name="x",
                netlist=standard_datapath(width=4, stimulus_vectors=5)[
                    "adder"
                ].netlist,
                vectors=({"a[0]": 0},),
            )
