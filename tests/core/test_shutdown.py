"""Unit tests for shutdown policies and the session-trace generator."""

import pytest

from repro.core.shutdown import (
    ActivityPeriod,
    OraclePolicy,
    PredictivePolicy,
    ShutdownCosts,
    TimeoutPolicy,
    evaluate_policy,
    synthetic_session_trace,
)
from repro.errors import AnalysisError


@pytest.fixture
def costs():
    return ShutdownCosts(
        active_power_w=10e-3,
        idle_power_w=2e-3,
        off_power_w=10e-6,
        wakeup_energy_j=1e-7,
        wakeup_latency_cycles=50,
        cycle_time_s=1e-6,
    )


@pytest.fixture
def trace():
    return synthetic_session_trace(n_periods=300, seed=3)


class TestCosts:
    def test_breakeven_formula(self, costs):
        expected = 1e-7 / ((2e-3 - 10e-6) * 1e-6)
        assert costs.breakeven_cycles == pytest.approx(expected)

    def test_power_ordering_enforced(self):
        with pytest.raises(AnalysisError, match="off <= idle"):
            ShutdownCosts(
                active_power_w=1e-3,
                idle_power_w=1e-6,
                off_power_w=1e-3,
                wakeup_energy_j=0.0,
                wakeup_latency_cycles=0,
                cycle_time_s=1e-6,
            )

    def test_zero_saving_gives_infinite_breakeven(self):
        costs = ShutdownCosts(
            active_power_w=1e-3,
            idle_power_w=1e-6,
            off_power_w=1e-6,
            wakeup_energy_j=1e-9,
            wakeup_latency_cycles=0,
            cycle_time_s=1e-6,
        )
        assert costs.breakeven_cycles == float("inf")


class TestTraceGenerator:
    def test_alternates_busy_idle(self, trace):
        assert trace[0].busy
        for previous, current in zip(trace, trace[1:]):
            assert previous.busy != current.busy

    def test_deterministic_by_seed(self):
        assert synthetic_session_trace(seed=9) == synthetic_session_trace(
            seed=9
        )
        assert synthetic_session_trace(seed=9) != synthetic_session_trace(
            seed=10
        )

    def test_mostly_idle_like_an_x_server(self, trace):
        # The paper: >95% idle under ideal shutdown.  Our defaults give
        # a deeply idle trace.
        busy = sum(p.duration_cycles for p in trace if p.busy)
        total = sum(p.duration_cycles for p in trace)
        assert busy / total < 0.2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            synthetic_session_trace(n_periods=1)
        with pytest.raises(AnalysisError):
            synthetic_session_trace(heavy_tail=1.0)
        with pytest.raises(AnalysisError):
            ActivityPeriod(busy=True, duration_cycles=0)


class TestPolicies:
    def test_timeout_policy_returns_fixed_delay(self):
        policy = TimeoutPolicy(timeout_cycles=100)
        assert policy.shutdown_delay([5, 10], 10_000) == 100

    def test_oracle_only_shuts_down_when_worthwhile(self, costs):
        oracle = OraclePolicy(costs.breakeven_cycles)
        assert oracle.shutdown_delay([], 10) is None
        assert oracle.shutdown_delay([], 10_000_000) == 0

    def test_predictive_uses_history(self, costs):
        policy = PredictivePolicy(
            breakeven_cycles=100, smoothing=1.0
        )
        # Last idle was long -> predict long -> shut down at once.
        assert policy.shutdown_delay([5000], 7) == 0
        # Last idle was short -> stay powered.
        assert policy.shutdown_delay([5], 7_000_000) is None

    def test_predictive_smoothing_validated(self):
        with pytest.raises(AnalysisError):
            PredictivePolicy(breakeven_cycles=10, smoothing=0.0)


class TestEvaluation:
    def test_always_on_baseline(self, trace, costs):
        # A timeout longer than every idle period = never shuts down.
        never = TimeoutPolicy(timeout_cycles=10**9)
        report = evaluate_policy(trace, never, costs, "never")
        assert report.energy_j == pytest.approx(report.always_on_energy_j)
        assert report.wakeups == 0
        assert report.off_fraction == 0.0

    def test_oracle_beats_or_ties_everyone(self, trace, costs):
        oracle = evaluate_policy(
            trace, OraclePolicy(costs.breakeven_cycles), costs, "oracle"
        )
        for policy in (
            TimeoutPolicy(0),
            TimeoutPolicy(int(costs.breakeven_cycles)),
            TimeoutPolicy(10 * int(costs.breakeven_cycles)),
            PredictivePolicy(costs.breakeven_cycles),
        ):
            report = evaluate_policy(trace, policy, costs)
            assert oracle.energy_j <= report.energy_j * (1.0 + 1e-9)

    def test_shutdown_saves_heavily_on_idle_traces(self, trace, costs):
        report = evaluate_policy(
            trace, TimeoutPolicy(int(costs.breakeven_cycles)), costs
        )
        assert report.saving_vs_always_on > 0.5

    def test_predictive_competitive_with_oracle(self, trace, costs):
        predictive = evaluate_policy(
            trace, PredictivePolicy(costs.breakeven_cycles), costs
        )
        assert predictive.efficiency_vs_oracle > 0.6

    def test_latency_accounting(self, trace, costs):
        report = evaluate_policy(trace, TimeoutPolicy(0), costs)
        assert report.latency_penalty_cycles == (
            report.wakeups * costs.wakeup_latency_cycles
        )

    def test_empty_trace_rejected(self, costs):
        with pytest.raises(AnalysisError):
            evaluate_policy([], TimeoutPolicy(0), costs)
