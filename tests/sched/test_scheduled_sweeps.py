"""Parity and resume tests for the ``scheduler=`` analysis paths.

Every sweep that grew a ``scheduler=`` parameter next to ``workers=``
must produce results bit-identical to its serial path — including
through checkpoints and after a partially evaluated (then resumed)
job.  These tests run the scheduler entirely in-process via the drain
loop's rescue path, which exercises the same queue protocol the
subprocess workers use, deterministically and fast.
"""

import operator

import pytest

from repro.analysis.contour import energy_ratio_surface
from repro.analysis.sweep import sweep_2d
from repro.analysis.variation import MonteCarloAnalyzer
from repro.errors import SchedulerError
from repro.sched import Scheduler, Worker, scheduled_map_items
from repro.sched.queue import JobQueue
from repro.sched.scheduler import plan_chunksize
from repro.sched.workloads import demo_module
from repro.store import ResultStore
from repro.store.hashing import digest
from repro.tech.cells import standard_cells
from repro.device.technology import soi_low_vt

from tests.sched._jobfns import log_and_square, square


def _rescue_scheduler(tmp_path, **overrides):
    """A scheduler that drains in-process — no subprocesses, no sleep."""
    options = dict(
        root=str(tmp_path / "queue"),
        local_workers=0,
        rescue_after_s=0.0,
        poll_s=0.0,
        timeout_s=60.0,
    )
    options.update(overrides)
    return Scheduler(**options)


class TestScheduledMapItems:
    def test_matches_serial_map(self, tmp_path):
        scheduler = _rescue_scheduler(tmp_path)
        items = list(range(23))
        assert scheduled_map_items(square, items, scheduler) == [
            x * x for x in items
        ]

    def test_empty_items_short_circuit(self, tmp_path):
        scheduler = _rescue_scheduler(tmp_path)
        assert scheduled_map_items(square, [], scheduler) == []

    def test_chunk_done_contract_matches_map_items(self, tmp_path):
        """chunk_done fires once per chunk with global input-order
        indices — the exact contract SweepCheckpoint depends on."""
        scheduler = _rescue_scheduler(tmp_path)
        items = list(range(10))
        calls = []
        progress = []
        scheduled_map_items(
            square,
            items,
            scheduler,
            progress=lambda done, total: progress.append((done, total)),
            chunk_done=lambda indices, values: calls.append(
                (list(indices), list(values))
            ),
        )
        size = plan_chunksize(len(items), scheduler.plan_workers)
        covered = sorted(i for indices, _ in calls for i in indices)
        assert covered == items
        for indices, values in calls:
            assert values == [x * x for x in indices]
            assert len(indices) <= size
        assert progress[-1] == (10, 10)

    def test_resume_skips_committed_chunks(self, tmp_path):
        """A killed job's committed chunks are not recomputed: the log
        shows every item evaluated exactly once across both runs."""
        log = tmp_path / "evals.log"
        items = [(value, str(log)) for value in range(12)]
        scheduler = _rescue_scheduler(tmp_path)
        record = scheduler.submit(log_and_square, items)
        # "First run" commits two chunks, then dies (simulated by just
        # stopping).  In-process worker = same protocol as the real one.
        worker = Worker(scheduler.queue, lease_s=30.0)
        worker.run(job_id=record.job_id, once=True)
        worker.run(job_id=record.job_id, once=True)
        committed = scheduler.queue.result_indices(record.job_id)
        assert len(committed) == 2
        # "Second run": identical submission resumes the same job.
        result = scheduled_map_items(log_and_square, items, scheduler)
        assert result == [value * value for value, _ in items]
        evaluated = sorted(
            int(line.split()[0])
            for line in log.read_text().splitlines()
        )
        assert evaluated == list(range(12))  # each item exactly once

    def test_cancelled_job_raises(self, tmp_path):
        scheduler = _rescue_scheduler(tmp_path)
        record = scheduler.submit(square, list(range(50)))
        scheduler.cancel(record.job_id)
        with pytest.raises(SchedulerError, match="cancelled"):
            scheduler.wait(record.job_id)

    def test_drain_timeout_raises(self, tmp_path):
        scheduler = _rescue_scheduler(
            tmp_path, rescue_after_s=None, timeout_s=0.1, poll_s=0.01
        )
        record = scheduler.submit(square, list(range(4)))
        with pytest.raises(SchedulerError, match="did not finish"):
            scheduler.wait(record.job_id)


class TestScheduledSweep2D:
    def test_grid_matches_serial(self, tmp_path):
        xs = [0.5 * k for k in range(1, 7)]
        ys = [0.25 * k for k in range(1, 5)]
        serial = sweep_2d("x", "y", "z", xs, ys, operator.mul)
        scheduled = sweep_2d(
            "x", "y", "z", xs, ys, operator.mul,
            scheduler=_rescue_scheduler(tmp_path),
        )
        assert scheduled == serial
        assert digest(
            [list(row) for row in scheduled.zs]
        ) == digest([list(row) for row in serial.zs])

    def test_store_backed_grid_matches_serial(self, tmp_path):
        xs = [0.1 * k for k in range(1, 6)]
        ys = [0.2 * k for k in range(1, 6)]
        serial = sweep_2d("x", "y", "z", xs, ys, operator.mul)
        store = ResultStore.in_memory()
        scheduled = sweep_2d(
            "x", "y", "z", xs, ys, operator.mul,
            store=store, store_key="sweep/test-grid",
            scheduler=_rescue_scheduler(tmp_path),
        )
        assert scheduled == serial
        # Warm re-run restores everything from the checkpoint — no new
        # scheduler job is needed.
        warm = sweep_2d(
            "x", "y", "z", xs, ys, operator.mul,
            store=store, store_key="sweep/test-grid",
            scheduler=None,
        )
        assert warm == serial


class TestScheduledContour:
    def test_refined_surface_matches_serial(self, tmp_path):
        module = demo_module()
        grid = [k / 8 for k in range(1, 9)]
        serial = energy_ratio_surface(
            module, 1.0, 1e-6, grid, grid,
            refine_levels=2, refine_band=0.15,
        )
        scheduled = energy_ratio_surface(
            module, 1.0, 1e-6, grid, grid,
            refine_levels=2, refine_band=0.15,
            scheduler=_rescue_scheduler(tmp_path),
        )
        assert scheduled.grid == serial.grid
        assert scheduled.refined == serial.refined
        assert digest(
            [list(row) for row in scheduled.grid.zs]
        ) == digest([list(row) for row in serial.grid.zs])
        assert digest(list(scheduled.refined.values)) == digest(
            list(serial.refined.values)
        )


class TestScheduledMonteCarlo:
    def test_distributions_match_serial(self, tmp_path):
        technology = soi_low_vt()
        cell = standard_cells()["NAND2"]
        serial = MonteCarloAnalyzer(
            technology, n_samples=40, seed=3
        )
        scheduled = MonteCarloAnalyzer(
            technology, n_samples=40, seed=3,
            scheduler=_rescue_scheduler(tmp_path),
        )
        load_f = 10e-15
        assert (
            scheduled.delay_distribution(cell, 0.8, load_f).samples
            == serial.delay_distribution(cell, 0.8, load_f).samples
        )
        assert (
            scheduled.leakage_distribution(cell, 0.8).samples
            == serial.leakage_distribution(cell, 0.8).samples
        )

    def test_store_backed_samples_match_serial(self, tmp_path):
        technology = soi_low_vt()
        cell = standard_cells()["NAND2"]
        serial = MonteCarloAnalyzer(technology, n_samples=40, seed=3)
        scheduled = MonteCarloAnalyzer(
            technology, n_samples=40, seed=3,
            store=ResultStore.in_memory(),
            scheduler=_rescue_scheduler(tmp_path),
        )
        load_f = 10e-15
        assert (
            scheduled.delay_distribution(cell, 0.8, load_f).samples
            == serial.delay_distribution(cell, 0.8, load_f).samples
        )
