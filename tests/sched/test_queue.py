"""Unit tests for the durable job queue: leases, commits, assembly."""

import pytest

from repro import obs
from repro.errors import SchedulerError
from repro.sched.queue import JobQueue
from repro.store.backend import DiskBackend, MemoryBackend
from repro.store.hashing import digest

from tests.sched._jobfns import square, tuple_echo


@pytest.fixture
def queue(tmp_path):
    return JobQueue(str(tmp_path / "queue"))


class TestSubmit:
    def test_submit_plans_chunks(self, queue):
        record = queue.submit(square, list(range(10)), chunksize=3)
        assert record.n_items == 10
        assert record.n_chunks == 4
        assert record.chunk_bounds(0) == (0, 3)
        assert record.chunk_bounds(3) == (9, 10)

    def test_submit_is_idempotent(self, queue):
        first = queue.submit(square, [1, 2, 3], chunksize=2)
        second = queue.submit(square, [1, 2, 3], chunksize=2)
        assert first.job_id == second.job_id
        assert queue.list_jobs() == [first.job_id]

    def test_different_work_gets_different_ids(self, queue):
        a = queue.submit(square, [1, 2, 3], chunksize=2)
        b = queue.submit(square, [1, 2, 4], chunksize=2)
        c = queue.submit(square, [1, 2, 3], chunksize=3)
        assert len({a.job_id, b.job_id, c.job_id}) == 3

    def test_empty_job_rejected(self, queue):
        with pytest.raises(SchedulerError):
            queue.submit(square, [], chunksize=1)

    def test_bad_chunksize_rejected(self, queue):
        with pytest.raises(SchedulerError):
            queue.submit(square, [1], chunksize=0)

    def test_unpicklable_payload_rejected(self, queue):
        with pytest.raises(SchedulerError):
            queue.submit(lambda x: x, [1, 2], chunksize=1)

    def test_payload_round_trips(self, queue):
        record = queue.submit(square, [4, 5], chunksize=1)
        fn, items = queue.payload(record.job_id)
        assert fn is square
        assert items == [4, 5]

    def test_missing_job_raises(self, queue):
        with pytest.raises(SchedulerError, match="no such job"):
            queue.load_job("deadbeef")
        assert queue.load_job("deadbeef", missing_ok=True) is None


class TestClaimCommit:
    def test_claim_commit_assemble(self, queue):
        record = queue.submit(square, list(range(7)), chunksize=3)
        while True:
            claim = queue.claim("w1", lease_s=30.0)
            if claim is None:
                break
            fn, items = queue.payload(claim.job_id)
            start, stop = record.chunk_bounds(claim.chunk_index)
            values = [fn(item) for item in items[start:stop]]
            assert queue.commit(
                claim.job_id, claim.chunk_index, values, "w1"
            )
        assert queue.assemble(record.job_id) == [
            x * x for x in range(7)
        ]
        assert queue.status(record.job_id).finished

    def test_live_lease_blocks_other_workers(self, queue):
        record = queue.submit(square, [1, 2], chunksize=1)
        first = queue.claim("w1", lease_s=60.0, job_id=record.job_id)
        second = queue.claim("w2", lease_s=60.0, job_id=record.job_id)
        assert first.chunk_index != second.chunk_index
        assert queue.claim("w3", lease_s=60.0, job_id=record.job_id) is None

    def test_duplicate_commit_is_idempotent(self, queue):
        record = queue.submit(square, [1, 2, 3], chunksize=3)
        claim = queue.claim("w1", lease_s=30.0)
        values = [1, 4, 9]
        assert queue.commit(record.job_id, claim.chunk_index, values, "w1")
        # A second worker that stole the lease and finished later
        # commits the identical values; the first write wins silently.
        with obs.enabled_scope():
            assert not queue.commit(
                record.job_id, claim.chunk_index, values, "w2"
            )
            assert obs.counter_value("sched.duplicate_commits") == 1
        assert queue.assemble(record.job_id) == values

    def test_commit_validates_chunk_length(self, queue):
        record = queue.submit(square, [1, 2, 3], chunksize=3)
        with pytest.raises(SchedulerError, match="expects 3 values"):
            queue.commit(record.job_id, 0, [1], "w1")

    def test_committed_chunk_never_reclaimed(self, queue):
        record = queue.submit(square, [1, 2], chunksize=1)
        claim = queue.claim("w1", lease_s=30.0)
        queue.commit(record.job_id, claim.chunk_index, [1], "w1")
        other = queue.claim("w2", lease_s=30.0)
        assert other.chunk_index != claim.chunk_index
        queue.commit(record.job_id, other.chunk_index, [4], "w2")
        assert queue.claim("w3", lease_s=30.0) is None

    def test_release_frees_chunk_immediately(self, queue):
        record = queue.submit(square, [1], chunksize=1)
        claim = queue.claim("w1", lease_s=600.0)
        assert queue.claim("w2", lease_s=600.0) is None
        assert queue.release(record.job_id, claim.chunk_index, "w1")
        assert queue.claim("w2", lease_s=600.0) is not None

    def test_cancel_stops_claims_everywhere(self, queue):
        record = queue.submit(square, [1, 2], chunksize=1)
        queue.cancel(record.job_id)
        assert queue.is_cancelled(record.job_id)
        assert queue.claim("w1", lease_s=30.0) is None
        assert queue.queue_depth() == 0


class TestLeaseExpiry:
    def test_expired_lease_is_stolen(self, tmp_path):
        clock = [1000.0]
        queue = JobQueue(
            str(tmp_path), clock_skew_s=2.0, _now=lambda: clock[0]
        )
        record = queue.submit(square, [1], chunksize=1)
        assert queue.claim("w1", lease_s=10.0) is not None
        # Within lease + skew: still protected.
        clock[0] += 11.0
        assert queue.claim("w2", lease_s=10.0) is None
        # Past lease + skew: stolen.
        clock[0] += 2.0
        with obs.enabled_scope():
            stolen = queue.claim("w2", lease_s=10.0)
            assert stolen is not None
            assert obs.counter_value("sched.leases_expired") == 1
        assert stolen.chunk_index == 0

    def test_clock_skew_protects_slow_clocks(self, tmp_path):
        """A generous skew keeps a lease alive well past its deadline.

        Worker hosts whose clocks lag the client's must not have their
        live leases stolen the instant the (fast) client clock passes
        the deadline — ``clock_skew_s`` is that margin.
        """
        clock = [0.0]
        generous = JobQueue(
            str(tmp_path / "a"), clock_skew_s=30.0, _now=lambda: clock[0]
        )
        record = generous.submit(square, [1], chunksize=1)
        assert generous.claim("w1", lease_s=5.0) is not None
        clock[0] += 20.0  # 15 s past deadline, inside the 30 s skew
        assert generous.claim("w2", lease_s=5.0) is None
        status = generous.status(record.job_id)
        assert status.leased == 1 and status.queued == 0

        strict = JobQueue(
            str(tmp_path / "b"), clock_skew_s=0.5, _now=lambda: clock[0]
        )
        strict.submit(square, [1], chunksize=1)
        assert strict.claim("w1", lease_s=5.0) is not None
        clock[0] += 20.0
        assert strict.claim("w2", lease_s=5.0) is not None

    def test_heartbeat_extends_lease(self, tmp_path):
        clock = [0.0]
        queue = JobQueue(
            str(tmp_path), clock_skew_s=0.0, _now=lambda: clock[0]
        )
        record = queue.submit(square, [1], chunksize=1)
        queue.claim("w1", lease_s=10.0)
        clock[0] += 8.0
        assert queue.heartbeat(record.job_id, 0, "w1", lease_s=10.0)
        clock[0] += 8.0  # 16 s after claim, 8 s after heartbeat
        assert queue.claim("w2", lease_s=10.0) is None

    def test_heartbeat_fails_after_steal(self, tmp_path):
        clock = [0.0]
        queue = JobQueue(
            str(tmp_path), clock_skew_s=0.0, _now=lambda: clock[0]
        )
        record = queue.submit(square, [1], chunksize=1)
        queue.claim("w1", lease_s=5.0)
        clock[0] += 10.0
        assert queue.claim("w2", lease_s=5.0) is not None
        assert not queue.heartbeat(record.job_id, 0, "w1", lease_s=5.0)

    def test_reap_expired_updates_accounting(self, tmp_path):
        clock = [0.0]
        queue = JobQueue(
            str(tmp_path), clock_skew_s=0.0, _now=lambda: clock[0]
        )
        record = queue.submit(square, [1, 2], chunksize=1)
        queue.claim("w1", lease_s=5.0)
        clock[0] += 10.0
        assert queue.reap_expired(record.job_id) == 1
        status = queue.status(record.job_id)
        assert status.leased == 0 and status.queued == 2


class TestResultEncoding:
    def test_tuple_results_round_trip_exactly(self, queue):
        record = queue.submit(tuple_echo, [1, 2, 3], chunksize=2)
        for index in range(record.n_chunks):
            claim = queue.claim("w1", lease_s=30.0)
            fn, items = queue.payload(claim.job_id)
            start, stop = record.chunk_bounds(claim.chunk_index)
            queue.commit(
                claim.job_id,
                claim.chunk_index,
                [fn(item) for item in items[start:stop]],
                "w1",
            )
        assembled = queue.assemble(record.job_id)
        assert assembled == [tuple_echo(x) for x in [1, 2, 3]]
        assert all(isinstance(value, tuple) for value in assembled)

    def test_float_results_digest_identical(self, queue):
        items = [0.1 * k for k in range(9)]
        record = queue.submit(square, items, chunksize=4)
        while (claim := queue.claim("w1", lease_s=30.0)) is not None:
            fn, job_items = queue.payload(claim.job_id)
            start, stop = record.chunk_bounds(claim.chunk_index)
            queue.commit(
                claim.job_id,
                claim.chunk_index,
                [fn(item) for item in job_items[start:stop]],
                "w1",
            )
        serial = [square(x) for x in items]
        assert digest(queue.assemble(record.job_id)) == digest(serial)


class TestObsCounters:
    def test_scheduler_counters_recorded(self, queue):
        with obs.enabled_scope():
            record = queue.submit(square, [1, 2, 3, 4], chunksize=2)
            claim = queue.claim("w1", lease_s=30.0)
            queue.heartbeat(
                record.job_id, claim.chunk_index, "w1", lease_s=30.0
            )
            queue.commit(record.job_id, claim.chunk_index, [1, 4], "w1")
            depth = queue.queue_depth()
            snapshot = obs.snapshot()
        counters = snapshot["counters"]
        assert counters["sched.jobs"] == 1
        assert counters["sched.chunks_claimed"] == 1
        assert counters["sched.heartbeats"] == 1
        assert counters["sched.chunks_committed"] == 1
        assert depth == 1
        assert snapshot["gauges"]["sched.queue_depth"] == 1


class TestBackendPutNew:
    def test_disk_put_new_is_exclusive(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        assert backend.put_new("lease/0", {"worker": "a"})
        assert not backend.put_new("lease/0", {"worker": "b"})
        assert backend.get("lease/0") == {"worker": "a"}

    def test_memory_put_new_is_exclusive(self):
        backend = MemoryBackend()
        assert backend.put_new("k", 1)
        assert not backend.put_new("k", 2)
        assert backend.get("k") == 1

    def test_put_new_after_delete_succeeds(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put_new("k", 1)
        backend.delete("k")
        assert backend.put_new("k", 2)
        assert backend.get("k") == 2

    def test_torn_put_new_self_heals(self, tmp_path):
        """A file torn mid-``put_new`` reads as absent and is dropped."""
        backend = DiskBackend(str(tmp_path))
        path = backend._path("lease/0")
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-store-v1", "key": "lea')
        assert backend.get("lease/0") is None  # dropped as corrupt
        assert backend.put_new("lease/0", {"worker": "a"})
