"""Picklable work functions for the scheduler tests.

Scheduler jobs pickle their function by reference, so anything a
worker subprocess must evaluate has to live in an importable module —
this one, imported as ``tests.sched._jobfns`` (the fault tests put
the repo root on the worker's ``PYTHONPATH``).
"""

import os
import time


def square(x):
    return x * x


def slow_square(x):
    """Square with enough latency that a chunk spans a kill window."""
    time.sleep(0.15)
    return x * x


def tuple_echo(x):
    """Returns a tuple — exercises the pickled result encoding."""
    return (x, x * x)


def log_and_square(task):
    """Append the item to a log file, then square it.

    The log records which process evaluated which item, letting the
    resume tests assert that committed chunks are never recomputed.
    """
    value, log_path = task
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value} {os.getpid()}\n")
    return value * value
