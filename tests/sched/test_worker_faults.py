"""Fault-injection tests for the distributed scheduler.

Real worker subprocesses are killed mid-run (SIGKILL — the OOM
killer's signal) and the lease protocol is asserted end to end: the
dead worker's lease expires, the chunk is re-dispatched, no chunk is
lost or duplicated, and the assembled result is bit-identical (by
store digest) to the serial evaluation.  SIGTERM is the clean
counterpart: the worker abandons its chunk, releases the lease, and
exits 0.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.sched.queue import JobQueue
from repro.sched.scheduler import drain
from repro.store.hashing import digest

from tests.sched._jobfns import slow_square

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="fault injection uses POSIX signals"
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _worker_env():
    """Workers must import both ``repro`` and ``tests.sched._jobfns``."""
    env = dict(os.environ)
    parts = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    existing = env.get("PYTHONPATH")
    if existing:
        parts.append(existing)
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _spawn_worker(root, lease_s, poll_s=0.05):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "sched",
            "worker",
            str(root),
            "--lease-s",
            str(lease_s),
            "--poll-s",
            str(poll_s),
        ],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout_s=30.0, poll_s=0.02):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


class TestSigkill:
    def test_killed_worker_chunk_redispatched_digest_identical(
        self, tmp_path
    ):
        """SIGKILL mid-run: lease expires, chunk re-dispatched, final
        digest equals the serial evaluation's."""
        root = str(tmp_path / "queue")
        queue = JobQueue(root, clock_skew_s=0.2)
        items = list(range(8))
        record = queue.submit(slow_square, items, chunksize=2)
        worker = _spawn_worker(root, lease_s=1.0)
        try:
            # Let it commit at least one chunk, then kill it while the
            # next chunk is mid-evaluation (each chunk takes ~0.3 s).
            assert _wait_for(
                lambda: len(queue.result_indices(record.job_id)) >= 1
            ), "worker never committed a chunk"
            worker.send_signal(signal.SIGKILL)
            worker.wait()
            committed_at_kill = set(queue.result_indices(record.job_id))
            assert len(committed_at_kill) < record.n_chunks
            leased_at_kill = queue.status(record.job_id).leased

            with obs.enabled_scope():
                result = drain(
                    queue,
                    record.job_id,
                    poll_s=0.05,
                    timeout_s=60.0,
                    rescue_after_s=0.1,
                )
                expired = obs.counter_value("sched.leases_expired")
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()
        serial = [x * x for x in items]
        assert result == serial
        assert digest(result) == digest(serial)
        # Exactly one result per chunk: nothing lost, nothing duplicated.
        assert queue.result_indices(record.job_id) == list(
            range(record.n_chunks)
        )
        # If the worker died holding a lease, that lease had to expire
        # (and be stolen or reaped) before the chunk was re-dispatched.
        if leased_at_kill:
            assert expired >= 1
        # Re-submitting the identical job resumes as already-finished.
        again = queue.submit(slow_square, items, chunksize=2)
        assert again.job_id == record.job_id
        assert queue.status(record.job_id).finished

    def test_surviving_worker_finishes_after_peer_killed(self, tmp_path):
        """Two workers, one killed: the survivor drains everything and
        the drain loop never has to rescue in-process."""
        root = str(tmp_path / "queue")
        queue = JobQueue(root, clock_skew_s=0.2)
        items = list(range(10))
        record = queue.submit(slow_square, items, chunksize=2)
        workers = [
            _spawn_worker(root, lease_s=1.0),
            _spawn_worker(root, lease_s=1.0),
        ]
        try:
            assert _wait_for(
                lambda: len(queue.result_indices(record.job_id)) >= 1
            ), "no worker committed a chunk"
            workers[0].send_signal(signal.SIGKILL)
            workers[0].wait()
            result = drain(
                queue,
                record.job_id,
                poll_s=0.05,
                timeout_s=60.0,
                rescue_after_s=None,  # recovery must come from the peer
            )
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        serial = [x * x for x in items]
        assert result == serial
        assert digest(result) == digest(serial)


class TestSigterm:
    def test_sigterm_releases_lease_and_exits_zero(self, tmp_path):
        """Clean shutdown: the worker abandons its chunk mid-evaluation,
        releases the lease (no expiry wait), and exits 0."""
        root = str(tmp_path / "queue")
        queue = JobQueue(root, clock_skew_s=0.2)
        # One big slow chunk (~1.2 s) so SIGTERM lands mid-chunk.
        record = queue.submit(slow_square, list(range(8)), chunksize=8)
        worker = _spawn_worker(root, lease_s=30.0)
        try:
            assert _wait_for(
                lambda: queue.status(record.job_id).leased == 1
            ), "worker never claimed the chunk"
            worker.terminate()
            assert worker.wait(timeout=30) == 0
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()
        status = queue.status(record.job_id)
        # Nothing committed (the chunk was abandoned), and the lease
        # was released voluntarily — claimable again immediately.
        assert status.done == 0
        assert status.leased == 0
        assert queue.claim("w2", lease_s=30.0) is not None
