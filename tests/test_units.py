"""Tests for physical constants and unit helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_thermal_voltage_at_room_temperature(self):
        assert units.thermal_voltage() == pytest.approx(0.02585, rel=1e-3)

    def test_thermal_voltage_scales_linearly(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2.0 * units.thermal_voltage(300.0)
        )

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)

    def test_subthreshold_floor_is_59_5mv(self):
        # kT/q * ln10 at 300 K: the physical swing limit.
        floor = units.thermal_voltage() * units.LN10
        assert floor == pytest.approx(0.0595, rel=1e-2)

    def test_permittivities(self):
        assert units.EPSILON_SI / units.EPSILON_0 == pytest.approx(11.7)
        assert units.EPSILON_OX / units.EPSILON_0 == pytest.approx(3.9)


class TestConversions:
    @pytest.mark.parametrize(
        "fn,value,expected",
        [
            (units.nm, 9.0, 9e-9),
            (units.um, 2.0, 2e-6),
            (units.mm, 1.5, 1.5e-3),
            (units.ff, 50.0, 50e-15),
            (units.pf, 1.0, 1e-12),
            (units.ns, 3.0, 3e-9),
            (units.ps, 42.0, 42e-12),
            (units.mhz, 1.0, 1e6),
            (units.khz, 32.0, 32e3),
            (units.ghz, 2.0, 2e9),
            (units.mw, 5.0, 5e-3),
            (units.uw, 7.0, 7e-6),
            (units.nw, 9.0, 9e-9),
            (units.ua, 3.0, 3e-6),
            (units.na, 4.0, 4e-9),
            (units.pa, 6.0, 6e-12),
            (units.mv, 250.0, 0.25),
        ],
    )
    def test_into_si(self, fn, value, expected):
        assert fn(value) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "fn,value,expected",
        [
            (units.to_ff, 1e-15, 1.0),
            (units.to_ps, 1e-12, 1.0),
            (units.to_uw, 1e-6, 1.0),
        ],
    )
    def test_out_of_si(self, fn, value, expected):
        assert fn(value) == pytest.approx(expected)

    def test_round_trips(self):
        assert units.to_ff(units.ff(123.0)) == pytest.approx(123.0)
        assert units.to_ps(units.ps(7.5)) == pytest.approx(7.5)


class TestDecades:
    def test_log10_semantics(self):
        assert units.decades(1000.0) == pytest.approx(3.0)
        assert units.decades(1.0) == 0.0
        assert units.decades(0.01) == pytest.approx(-2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.decades(0.0)
        with pytest.raises(ValueError):
            units.decades(-1.0)

    def test_consistent_with_math(self):
        assert units.decades(7.3e4) == pytest.approx(math.log10(7.3e4))
