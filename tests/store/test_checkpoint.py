"""Checkpointed-sweep tests: resume after interrupt, kill, and restart.

The bit-identity contract under test: a sweep resumed from a store —
after ``KeyboardInterrupt``, after SIGKILL of the whole process, or in
a fresh process — produces exactly the grid a cold serial run without
any store produces.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro import obs
from repro.analysis.sweep import sweep_2d
from repro.errors import AnalysisError, StoreError
from repro.store import ResultStore, SweepCheckpoint, request_digest


def _cell(x, y):
    # Awkward floats on purpose: resume must preserve every bit.
    if x == y:
        return None
    return (x + 0.1) / (y + 0.3)


class _InterruptAt:
    """Raise KeyboardInterrupt the first time the trigger cell is hit."""

    def __init__(self, trigger, fired):
        self.trigger = trigger
        self.fired = fired

    def __call__(self, x, y):
        if (x, y) == self.trigger and not self.fired:
            self.fired.append(True)
            raise KeyboardInterrupt
        return _cell(x, y)


class TestSweepCheckpoint:
    def test_record_restore_round_trip(self):
        store = ResultStore.in_memory()
        checkpoint = SweepCheckpoint(store, "k", 4, flush_every=2)
        checkpoint.record(0, 1.5)
        checkpoint.record(1, None)  # flushes
        checkpoint.record(2, 0.1 + 0.2)
        checkpoint.flush()
        restored = SweepCheckpoint(store, "k", 4).restored()
        assert restored == {0: 1.5, 1: None, 2: 0.1 + 0.2}

    def test_finalize_consolidates_parts(self):
        store = ResultStore.in_memory()
        checkpoint = SweepCheckpoint(store, "k", 2, flush_every=1)
        checkpoint.record(0, 1.0)
        checkpoint.record(1, 2.0)
        checkpoint.finalize()
        assert store.keys("sweep/k/part-") == []
        assert store.keys("sweep/k/") == ["sweep/k/final"]
        assert SweepCheckpoint(store, "k", 2).restored() == {0: 1.0, 1: 2.0}

    def test_finalize_incomplete_raises(self):
        store = ResultStore.in_memory()
        checkpoint = SweepCheckpoint(store, "k", 3)
        checkpoint.record(0, 1.0)
        with pytest.raises(StoreError, match="1/3"):
            checkpoint.finalize()

    def test_shape_mismatch_refused(self):
        store = ResultStore.in_memory()
        first = SweepCheckpoint(store, "k", 2, flush_every=1)
        first.record(0, 1.0)
        with pytest.raises(StoreError, match="written for 2 cells"):
            SweepCheckpoint(store, "k", 5).restored()

    def test_resume_continues_part_numbering(self):
        store = ResultStore.in_memory()
        first = SweepCheckpoint(store, "k", 4, flush_every=1)
        first.record(0, 1.0)
        first.record(1, 2.0)
        second = SweepCheckpoint(store, "k", 4, flush_every=1)
        assert second.restored() == {0: 1.0, 1: 2.0}
        second.record(2, 3.0)
        # The new part must not overwrite part-0/part-1.
        assert len(store.keys("sweep/k/part-")) == 3

    def test_validation(self):
        store = ResultStore.in_memory()
        with pytest.raises(StoreError, match="total_cells"):
            SweepCheckpoint(store, "k", 0)
        with pytest.raises(StoreError, match="flush_every"):
            SweepCheckpoint(store, "k", 1, flush_every=0)


class TestStoreBackedSweep2d:
    XS = [0.25, 0.5, 0.75, 1.0]
    YS = [0.1, 0.2, 0.5]

    def _key(self):
        return request_digest("test-sweep", self.XS, self.YS)

    def test_store_requires_key(self):
        with pytest.raises(AnalysisError, match="store_key"):
            sweep_2d(
                "x", "y", "z", self.XS, self.YS, _cell,
                store=ResultStore.in_memory(),
            )

    def test_cold_run_matches_plain_serial(self):
        store = ResultStore.in_memory()
        stored = sweep_2d(
            "x", "y", "z", self.XS, self.YS, _cell,
            store=store, store_key=self._key(),
        )
        plain = sweep_2d("x", "y", "z", self.XS, self.YS, _cell)
        assert stored == plain

    def test_warm_run_is_served_entirely_from_store(self):
        store = ResultStore.in_memory()
        key = self._key()
        cold = sweep_2d(
            "x", "y", "z", self.XS, self.YS, _cell,
            store=store, store_key=key,
        )

        def explode(x, y):
            raise AssertionError("cell recomputed on a warm run")

        with obs.enabled_scope():
            warm = sweep_2d(
                "x", "y", "z", self.XS, self.YS, explode,
                store=store, store_key=key,
            )
            restored = obs.counter_value("store.sweep_cells_restored")
        assert warm == cold
        assert restored == len(self.XS) * len(self.YS)

    def test_keyboard_interrupt_then_resume_bit_identical(self):
        store = ResultStore.in_memory()
        key = self._key()
        fn = _InterruptAt(trigger=(0.75, 0.2), fired=[])
        with pytest.raises(KeyboardInterrupt):
            sweep_2d(
                "x", "y", "z", self.XS, self.YS, fn,
                store=store, store_key=key, checkpoint_every=1,
            )
        with obs.enabled_scope():
            resumed = sweep_2d(
                "x", "y", "z", self.XS, self.YS, fn,
                store=store, store_key=key,
            )
            restored = obs.counter_value("store.sweep_cells_restored")
        plain = sweep_2d("x", "y", "z", self.XS, self.YS, _cell)
        assert resumed == plain
        # Every cell completed before the interrupt came from the store.
        assert restored >= 6

    def test_parallel_store_run_matches_serial(self):
        store = ResultStore.in_memory()
        stored = sweep_2d(
            "x", "y", "z", self.XS, self.YS, _cell,
            workers=2, store=store, store_key=self._key(),
        )
        plain = sweep_2d("x", "y", "z", self.XS, self.YS, _cell)
        assert stored == plain

    def test_progress_includes_restored_cells(self):
        store = ResultStore.in_memory()
        key = self._key()
        partial = SweepCheckpoint(
            store, key, len(self.XS) * len(self.YS), flush_every=1
        )
        partial.record(0, _cell(self.XS[0], self.YS[0]))
        calls = []
        sweep_2d(
            "x", "y", "z", self.XS, self.YS, _cell,
            store=store, store_key=key,
            progress=lambda done, total: calls.append((done, total)),
        )
        total = len(self.XS) * len(self.YS)
        assert calls[0] == (1, total)
        assert calls[-1] == (total, total)


@pytest.mark.skipif(
    os.name != "posix", reason="kill test uses POSIX signals"
)
class TestResumeAfterSigkill:
    """The whole sweeping *process* dies mid-grid; a fresh one resumes."""

    CHILD = textwrap.dedent(
        """
        import os, signal
        from repro.store import ResultStore
        from repro.analysis.sweep import sweep_2d

        calls = []

        def cell(x, y):
            calls.append(1)
            if len(calls) == 7:
                os.kill(os.getpid(), signal.SIGKILL)
            return x * 10.0 + y

        store = ResultStore.at({root!r})
        sweep_2d(
            "x", "y", "z", {xs!r}, {ys!r}, cell,
            store=store, store_key={key!r}, checkpoint_every=2,
        )
        """
    )

    def test_fresh_process_resumes_bit_identical(self, tmp_path):
        xs = [float(i) for i in range(4)]
        ys = [0.5, 1.5, 2.5]
        key = request_digest("kill-sweep", xs, ys)
        script = self.CHILD.format(
            root=str(tmp_path / "cache"), xs=xs, ys=ys, key=key
        )
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr.decode()

        store = ResultStore.at(str(tmp_path / "cache"))
        with obs.enabled_scope():
            resumed = sweep_2d(
                "x", "y", "z", xs, ys,
                lambda x, y: x * 10.0 + y,
                store=store, store_key=key,
            )
            restored = obs.counter_value("store.sweep_cells_restored")
        plain = sweep_2d(
            "x", "y", "z", xs, ys, lambda x, y: x * 10.0 + y
        )
        assert resumed == plain
        # checkpoint_every=2 and the kill at call 7: at least 6 cells
        # were durable when the process died.
        assert restored >= 6
