"""Run-registry tests: record, list, load, diff, damage handling."""

import json
import os
import time

import pytest

from repro.errors import StoreError
from repro.store import RunManifest, RunRegistry

FIXED_NOW = time.gmtime(1_700_000_000)


class TestRecord:
    def test_record_and_load_round_trip(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        manifest = registry.record(
            "optimize",
            inputs={"vdd": 1.0, "grid": 24},
            result={"energy": 2.5e-14},
            wall_time_s=0.75,
            metrics={"store.hits": 12},
        )
        assert registry.load(manifest.run_id) == manifest
        assert manifest.inputs_digest != manifest.result_digest
        assert len(manifest.inputs_digest) == 64

    def test_two_runs_listed_oldest_first(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        a = registry.record("a", {"x": 1}, 1, 0.1, now=FIXED_NOW)
        b = registry.record(
            "b", {"x": 2}, 2, 0.2, now=time.gmtime(1_700_000_060)
        )
        assert registry.run_ids() == sorted([a.run_id, b.run_id])
        assert [m.command for m in registry.list_manifests()] == ["a", "b"]

    def test_identical_timestamp_and_inputs_disambiguated(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        a = registry.record("cmd", {"x": 1}, 1, 0.1, now=FIXED_NOW)
        b = registry.record("cmd", {"x": 1}, 2, 0.1, now=FIXED_NOW)
        assert a.run_id != b.run_id
        assert b.run_id == f"{a.run_id}.1"
        assert registry.load(b.run_id).result_digest != a.result_digest

    def test_manifest_file_is_json_with_format(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        manifest = registry.record("cmd", {"x": 1}, 1, 0.1)
        with open(
            os.path.join(str(tmp_path), f"{manifest.run_id}.json"),
            encoding="utf-8",
        ) as handle:
            payload = json.load(handle)
        assert payload["format"] == "repro-run-manifest-v1"
        assert payload["command"] == "cmd"


class TestLoadErrors:
    def test_missing_run_names_known_ids(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        recorded = registry.record("cmd", {"x": 1}, 1, 0.1)
        with pytest.raises(StoreError, match=recorded.run_id):
            registry.load("does-not-exist")

    def test_empty_registry_lists_nothing(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "never-created"))
        assert registry.run_ids() == []
        assert registry.list_manifests() == []

    def test_malformed_manifest_names_path(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        path = os.path.join(str(tmp_path), "broken.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        with pytest.raises(StoreError, match="malformed run manifest"):
            registry.load("broken")

    def test_wrong_format_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="format"):
            RunManifest.from_dict({"format": "other"}, source="x.json")

    def test_missing_field_rejected(self):
        with pytest.raises(StoreError, match="malformed"):
            RunManifest.from_dict(
                {"format": "repro-run-manifest-v1", "run_id": "r"}
            )

    @pytest.mark.parametrize("run_id", ["", "a/b", "../up", ".hidden"])
    def test_bad_run_ids_rejected(self, tmp_path, run_id):
        with pytest.raises(StoreError, match="bad run id"):
            RunRegistry(str(tmp_path)).load(run_id)


class TestDiff:
    def test_diff_reports_keywise_differences(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        a = registry.record(
            "optimize", {"vdd": 1.0, "grid": 24}, {"e": 1.0}, 0.5,
            metrics={"store.hits": 3},
        )
        b = registry.record(
            "optimize", {"vdd": 0.8, "grid": 24}, {"e": 2.0}, 0.7,
            metrics={"store.hits": 9, "store.writes": 1},
        )
        differences = registry.diff(a.run_id, b.run_id)
        assert differences["inputs.vdd"] == (1.0, 0.8)
        assert differences["metrics.store.hits"] == (3, 9)
        assert differences["metrics.store.writes"] == (None, 1)
        assert "inputs.grid" not in differences
        assert "command" not in differences
        assert "inputs_digest" in differences
        assert "result_digest" in differences

    def test_identical_runs_diff_empty(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        a = registry.record("cmd", {"x": 1}, {"y": 2}, 0.5, now=FIXED_NOW)
        b = registry.record("cmd", {"x": 1}, {"y": 2}, 0.5, now=FIXED_NOW)
        assert registry.diff(a.run_id, b.run_id) == {}
