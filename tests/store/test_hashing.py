"""Canonical-hashing tests, including the pinned technology digest."""

import pytest

from repro.device.technology import soi_low_vt, soias_technology
from repro.errors import StoreError
from repro.power.energy import ModuleEnergyParameters
from repro.store.hashing import (
    canonical_json,
    cell_digest,
    digest,
    module_digest,
    request_digest,
    technology_digest,
)
from repro.tech.cells import standard_cells

#: The canonical digest of the default SOIAS technology.  This value
#: is load-bearing: every persisted characterization and sweep entry
#: is addressed under it.  If this test fails, a hashed input changed
#: (model field, serialization schema, hashing rule) — which silently
#: invalidates every existing store.  Bump deliberately, with a
#: changelog note, never casually.
PINNED_SOIAS_DIGEST = (
    "2c2119f5970fe4103b52808fc98b3512dec462c27c2586c34a35c677db1c23b6"
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_tuples_and_lists_are_identical(self):
        assert canonical_json((1, 2, (3, 4))) == canonical_json(
            [1, 2, [3, 4]]
        )

    def test_no_whitespace_and_sorted(self):
        assert canonical_json({"b": [1.5], "a": None}) == (
            '{"a":null,"b":[1.5]}'
        )

    def test_float_shortest_repr_round_trips(self):
        # 0.1 + 0.2 != 0.3; the canonical text must preserve the
        # distinction bit-for-bit.
        assert canonical_json(0.1 + 0.2) != canonical_json(0.3)
        assert canonical_json(0.30000000000000004) == canonical_json(
            0.1 + 0.2
        )

    def test_non_string_keys_rejected(self):
        with pytest.raises(StoreError, match="keys must be strings"):
            canonical_json({1: "x"})

    def test_unsupported_types_rejected(self):
        with pytest.raises(StoreError, match="not canonically hashable"):
            canonical_json({"x": {1, 2}})

    def test_dataclasses_hash_by_value(self):
        cell = standard_cells()["INV"]
        assert canonical_json(cell) == canonical_json(
            standard_cells()["INV"]
        )


class TestDigests:
    def test_digest_is_sha256_hex(self):
        value = digest({"a": 1})
        assert len(value) == 64
        assert int(value, 16) >= 0

    def test_soias_technology_digest_is_pinned(self):
        assert technology_digest(soias_technology()) == PINNED_SOIAS_DIGEST

    def test_distinct_technologies_have_distinct_digests(self):
        assert technology_digest(soi_low_vt()) != technology_digest(
            soias_technology()
        )

    def test_cell_digests_distinguish_cells(self):
        cells = standard_cells()
        assert cell_digest(cells["INV"]) != cell_digest(cells["NAND2"])
        assert cell_digest(cells["INV"]) == cell_digest(cells["INV"])

    def test_module_digest_covers_fields(self):
        module = ModuleEnergyParameters(
            name="adder",
            switched_capacitance_f=1e-12,
            leakage_low_vt_a=1e-9,
            leakage_high_vt_a=1e-12,
            back_gate_capacitance_f=1e-13,
            back_gate_swing_v=3.0,
        )
        changed = ModuleEnergyParameters(
            name="adder",
            switched_capacitance_f=2e-12,
            leakage_low_vt_a=1e-9,
            leakage_high_vt_a=1e-12,
            back_gate_capacitance_f=1e-13,
            back_gate_swing_v=3.0,
        )
        assert module_digest(module) != module_digest(changed)
        assert module_digest(module) == module_digest(module)


class TestRequestDigest:
    def test_kind_namespaces_requests(self):
        assert request_digest("mc-delay", 1.0) != request_digest(
            "mc-leakage", 1.0
        )

    def test_parts_are_order_sensitive(self):
        assert request_digest("k", 1.0, 2.0) != request_digest(
            "k", 2.0, 1.0
        )

    def test_empty_kind_rejected(self):
        with pytest.raises(StoreError, match="kind"):
            request_digest("")

    def test_dataclass_parts_accepted(self):
        cell = standard_cells()["INV"]
        assert request_digest("k", cell) == request_digest("k", cell)
