"""Persistent-characterization and Monte-Carlo store integration tests."""

import pytest

from repro import obs
from repro.analysis.variation import MonteCarloAnalyzer
from repro.device.technology import soi_low_vt, soias_technology
from repro.power.optimizer import (
    FixedThroughputOptimizer,
    RingOscillatorModel,
)
from repro.store import ResultStore
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer


@pytest.fixture()
def store(tmp_path):
    return ResultStore.at(str(tmp_path / "cache"))


class TestCharacterizerStore:
    def test_flush_then_restore_bit_identical(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        first = CellCharacterizer(technology, store=store)
        reference = [
            first.propagation_delay(inv, vdd, 10e-15)
            for vdd in (0.4, 0.7, 1.0)
        ] + [first.leakage_current(inv, 1.0)]
        written = first.flush_store()
        assert written > 0

        second = CellCharacterizer(technology, store=store)
        restored = [
            second.propagation_delay(inv, vdd, 10e-15)
            for vdd in (0.4, 0.7, 1.0)
        ] + [second.leakage_current(inv, 1.0)]
        assert restored == reference
        assert second.store_restored > 0

    def test_restored_entries_count_as_memo_hits(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        first = CellCharacterizer(technology, store=store)
        first.propagation_delay(inv, 1.0, 10e-15)
        first.flush_store()

        second = CellCharacterizer(technology, store=store)
        second.propagation_delay(inv, 1.0, 10e-15)
        info = second.cache_info()
        assert info.hits >= 1

    def test_different_technology_does_not_cross_pollinate(self, store):
        inv = standard_cells()["INV"]
        first = CellCharacterizer(soias_technology(), store=store)
        first.propagation_delay(inv, 1.0, 10e-15)
        first.flush_store()

        other = CellCharacterizer(soi_low_vt(), store=store)
        other.propagation_delay(inv, 1.0, 10e-15)
        assert other.store_restored == 0

    def test_flush_preserves_other_cells_entries(self, store):
        technology = soias_technology()
        cells = standard_cells()
        first = CellCharacterizer(technology, store=store)
        first.propagation_delay(cells["INV"], 1.0, 10e-15)
        first.propagation_delay(cells["NAND2"], 1.0, 10e-15)
        first.flush_store()

        # Touches only NAND2, then flushes: INV entries must survive.
        second = CellCharacterizer(technology, store=store)
        second.propagation_delay(cells["NAND2"], 0.8, 10e-15)
        second.flush_store()

        third = CellCharacterizer(technology, store=store)
        third.propagation_delay(cells["INV"], 1.0, 10e-15)
        assert third.store_restored > 0

    def test_flush_without_store_is_noop(self):
        characterizer = CellCharacterizer(soias_technology())
        assert characterizer.flush_store() == 0

    def test_uncached_mode_ignores_store(self, store):
        characterizer = CellCharacterizer(
            soias_technology(), cache=False, store=store
        )
        inv = standard_cells()["INV"]
        characterizer.propagation_delay(inv, 1.0, 10e-15)
        assert characterizer.flush_store() == 0

    def test_clear_cache_restages_persisted_entries(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        characterizer = CellCharacterizer(technology, store=store)
        reference = characterizer.propagation_delay(inv, 1.0, 10e-15)
        characterizer.flush_store()
        characterizer.clear_cache()
        assert characterizer.propagation_delay(inv, 1.0, 10e-15) == reference
        assert characterizer.store_restored > 0


class TestRingStore:
    def test_warm_optimum_matches_cold(self, store):
        technology = soi_low_vt()
        cold_ring = RingOscillatorModel(technology, store=store)
        target = 4.0 * cold_ring.stage_delay(1.0, 0.2)
        cold = FixedThroughputOptimizer(cold_ring).optimum(target)
        assert cold_ring.flush_store() > 0

        warm_ring = RingOscillatorModel(technology, store=store)
        warm = FixedThroughputOptimizer(warm_ring).optimum(target)
        assert warm == cold
        assert any(
            corner.store_restored > 0
            for corner in warm_ring._corners.values()
        )

    def test_flush_without_store_is_noop(self):
        ring = RingOscillatorModel(soi_low_vt())
        ring.stage_delay(1.0, 0.2)
        assert ring.flush_store() == 0


class TestMonteCarloStore:
    def test_distributions_match_unstored_run(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        stored = MonteCarloAnalyzer(
            technology, n_samples=16, store=store
        )
        plain = MonteCarloAnalyzer(technology, n_samples=16)
        assert (
            stored.delay_distribution(inv, 1.0).samples
            == plain.delay_distribution(inv, 1.0).samples
        )
        assert (
            stored.leakage_distribution(inv, 1.0).samples
            == plain.leakage_distribution(inv, 1.0).samples
        )

    def test_second_run_restores_all_samples(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        first = MonteCarloAnalyzer(technology, n_samples=16, store=store)
        reference = first.delay_distribution(inv, 1.0).samples

        with obs.enabled_scope():
            second = MonteCarloAnalyzer(
                technology, n_samples=16, store=store
            )
            resumed = second.delay_distribution(inv, 1.0).samples
            restored = obs.counter_value("store.sweep_cells_restored")
        assert resumed == reference
        assert restored == 16

    def test_parallel_store_run_matches_serial(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        parallel = MonteCarloAnalyzer(
            technology, n_samples=12, workers=2, store=store
        )
        plain = MonteCarloAnalyzer(technology, n_samples=12)
        assert (
            parallel.delay_distribution(inv, 1.0).samples
            == plain.delay_distribution(inv, 1.0).samples
        )

    def test_sampling_parameters_key_the_checkpoint(self, store):
        technology = soias_technology()
        inv = standard_cells()["INV"]
        MonteCarloAnalyzer(
            technology, n_samples=16, store=store
        ).delay_distribution(inv, 1.0)
        # A different seed must not be served from the first run's
        # checkpoints.
        other = MonteCarloAnalyzer(
            technology, n_samples=16, seed=7, store=store
        )
        plain = MonteCarloAnalyzer(technology, n_samples=16, seed=7)
        assert (
            other.delay_distribution(inv, 1.0).samples
            == plain.delay_distribution(inv, 1.0).samples
        )
