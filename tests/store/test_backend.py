"""Backend and ResultStore tests: atomicity, corruption, LRU, gc."""

import json
import os

import pytest

from repro import obs
from repro.errors import StoreError
from repro.store import DiskBackend, MemoryBackend, ResultStore


class TestKeys:
    @pytest.mark.parametrize(
        "key",
        ["", "a b", "a//b", "/abs", "a/../b", ".", "..", "a/..", None, 7],
    )
    def test_bad_keys_rejected(self, key):
        backend = MemoryBackend()
        with pytest.raises(StoreError, match="bad store key"):
            backend.put(key, {"x": 1})

    @pytest.mark.parametrize(
        "key", ["abc", "a/b/c", "sweep/0f3a/part-12", "char/a.b-c_d"]
    )
    def test_good_keys_accepted(self, tmp_path, key):
        backend = DiskBackend(str(tmp_path))
        backend.put(key, {"x": 1})
        assert backend.get(key) == {"x": 1}


class TestDiskBackend:
    def test_round_trip_and_persistence(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put("a/b", {"value": [1, 2.5, None]})
        # A fresh backend over the same root sees the entry.
        again = DiskBackend(str(tmp_path))
        assert again.get("a/b") == {"value": [1, 2.5, None]}

    def test_missing_key_is_none(self, tmp_path):
        assert DiskBackend(str(tmp_path)).get("nope") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        for i in range(20):
            backend.put(f"ns/k{i}", {"i": i})
        leftovers = [
            name
            for _, _, files in os.walk(str(tmp_path))
            for name in files
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_float_payloads_round_trip_bit_identical(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        values = [0.1 + 0.2, 1e-300, -0.0, 2**-1074, 1.7e308]
        backend.put("floats", values)
        restored = DiskBackend(str(tmp_path)).get("floats")
        assert all(a == b for a, b in zip(restored, values))
        assert str(restored[0]) == str(values[0])

    def test_corrupt_json_dropped_and_counted(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put("k", {"x": 1})
        path = os.path.join(str(tmp_path), "k.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn write")
        assert backend.get("k") is None
        assert backend.corrupt_dropped == 1
        assert not os.path.exists(path)

    def test_wrong_envelope_treated_as_absent(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        path = os.path.join(str(tmp_path), "k.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "other", "key": "k", "payload": 1}, handle)
        assert backend.get("k") is None
        assert backend.corrupt_dropped == 1

    def test_key_mismatch_treated_as_corrupt(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put("a", {"x": 1})
        os.rename(
            os.path.join(str(tmp_path), "a.json"),
            os.path.join(str(tmp_path), "b.json"),
        )
        assert backend.get("b") is None

    def test_keys_prefix_listing(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        for key in ["sweep/x/part-0", "sweep/x/final", "char/t1", "other"]:
            backend.put(key, 1)
        assert backend.keys("sweep/x/") == [
            "sweep/x/final",
            "sweep/x/part-0",
        ]
        assert len(backend.keys()) == 4

    def test_delete(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put("k", 1)
        assert backend.delete("k") is True
        assert backend.delete("k") is False
        assert backend.get("k") is None

    def test_gc_removes_oldest_first(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        for i in range(4):
            backend.put(f"k{i}", {"i": i, "pad": "x" * 100})
            path = os.path.join(str(tmp_path), f"k{i}.json")
            os.utime(path, (1000 + i, 1000 + i))
        size = backend.total_bytes() // 4
        removed, freed = backend.gc(max_bytes=2 * size + 1)
        assert removed == 2
        assert freed > 0
        assert backend.get("k0") is None
        assert backend.get("k1") is None
        assert backend.get("k3") == {"i": 3, "pad": "x" * 100}

    def test_gc_zero_removes_everything_and_prunes_dirs(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put("deep/nested/key", 1)
        removed, _ = backend.gc(max_bytes=0)
        assert removed == 1
        assert backend.entry_count() == 0
        assert not os.path.exists(os.path.join(str(tmp_path), "deep"))

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="max_bytes"):
            DiskBackend(str(tmp_path)).gc(-1)


class TestResultStore:
    def test_front_serves_repeat_reads(self, tmp_path):
        store = ResultStore.at(str(tmp_path))
        store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.get("k") == {"x": 1}
        info = store.cache_info()
        assert info.hits == 2
        assert info.misses == 0

    def test_miss_counted(self):
        store = ResultStore.in_memory()
        assert store.get("missing") is None
        assert store.cache_info().misses == 1

    def test_lru_front_evicts_beyond_bound(self):
        store = ResultStore.in_memory(max_front=2)
        for name in ["a", "b", "c"]:
            store.put(name, name)
        stats = store.stats()
        assert stats["front_entries"] == 2
        assert stats["evictions"] == 1
        # Evicted entries still come back from the backend.
        assert store.get("a") == "a"

    def test_zero_front_goes_to_backend(self, tmp_path):
        store = ResultStore.at(str(tmp_path), max_front=0)
        store.put("k", 5)
        assert store.stats()["front_entries"] == 0
        assert store.get("k") == 5

    def test_negative_front_rejected(self):
        with pytest.raises(StoreError, match="max_front"):
            ResultStore.in_memory(max_front=-1)

    def test_obs_counters_mirrored(self, tmp_path):
        store = ResultStore.at(str(tmp_path), max_front=1)
        with obs.enabled_scope():
            store.put("a", 1)
            store.put("b", 2)  # evicts a from the front
            store.get("a")
            store.get("nope")
            counters = dict(obs.snapshot()["counters"])
        assert counters["store.writes"] == 2
        # put("b") evicts a; get("a") promotes the backend hit back
        # into the single-slot front, evicting b.
        assert counters["store.evictions"] == 2
        assert counters["store.hits"] == 1
        assert counters["store.misses"] == 1

    def test_gc_clears_front(self, tmp_path):
        store = ResultStore.at(str(tmp_path))
        store.put("k", 1)
        removed, _ = store.gc(max_bytes=0)
        assert removed == 1
        assert store.get("k") is None

    def test_memory_store_gc_is_noop(self):
        store = ResultStore.in_memory()
        store.put("k", 1)
        assert store.gc(0) == (0, 0)
        assert store.get("k") == 1

    def test_stats_shape(self, tmp_path):
        stats = ResultStore.at(str(tmp_path)).stats()
        assert set(stats) == {
            "hits", "misses", "evictions", "writes", "front_entries",
            "front_max", "backend_entries", "backend_bytes",
            "corrupt_dropped",
        }
