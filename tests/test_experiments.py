"""Cross-experiment shape regressions (DESIGN.md acceptance criteria).

The benchmarks assert each experiment's shape in isolation; this file
checks the *relations between* experiments that the paper's argument
depends on — with smaller workloads so it stays fast in the unit-test
run.
"""

import math

import pytest

from repro.device.mosfet import Mosfet
from repro.device.technology import bulk_cmos_06um, soi_low_vt, soias_technology
from repro.isa.profiler import profile_program
from repro.isa.workloads import espresso_like, idea, li_like
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel
from repro.tech.cells import register_styles


@pytest.fixture(scope="module")
def profiles():
    return {
        "espresso": profile_program(espresso_like.build_program(24, 8)),
        "li": profile_program(li_like.build_program(32, 20)),
        "idea": profile_program(idea.build_program(idea.random_blocks(4))),
    }


class TestCrossTableRelations:
    """Tables 1-3 only make the paper's point *together*."""

    def test_idea_multiplier_dominates_spec_codes(self, profiles):
        assert profiles["idea"].fga("multiplier") > 10.0 * max(
            profiles["espresso"].fga("multiplier"),
            profiles["li"].fga("multiplier"),
            1e-6,
        ) - 1e-6

    def test_espresso_shifter_dominates_li(self, profiles):
        assert (
            profiles["espresso"].fga("shifter")
            > profiles["li"].fga("shifter")
        )

    def test_adder_is_the_busiest_unit_everywhere(self, profiles):
        for profile in profiles.values():
            assert profile.fga("adder") == max(
                profile.fga(u) for u in ("adder", "shifter", "multiplier")
            )

    def test_run_structure_differs_by_unit(self, profiles):
        # Adder uses cluster; multiplier/shifter uses are isolated
        # (mean run length ~1) — the structure Fig. 7 illustrates.
        for profile in profiles.values():
            adder_runs = profile.stats("adder").mean_run_length
            assert adder_runs > 1.5
        idea_mult = profiles["idea"].stats("multiplier").mean_run_length
        assert idea_mult == pytest.approx(1.0, abs=0.3)


class TestDeviceCalibrationCoherence:
    """Figs. 2 and 6 must describe the same transistor physics."""

    def test_fig6_vt_pair_spans_fig2_band(self):
        back_gate = soias_technology().back_gate
        assert back_gate.vt_at(0.0) > 0.40
        assert back_gate.vt_at(3.0) < 0.25

    def test_off_current_gap_follows_swing_in_both(self):
        # Fig. 2's V_T pair and Fig. 6's V_T pair must both obey
        # gap = dVT / S with the same S.
        # Anchor at the standby V_T so both shifts stay in the
        # subthreshold regime (effective V_T > 0).
        technology = soi_low_vt(vt0=0.45)
        device = Mosfet(technology.transistors.nmos)
        swing = technology.transistors.nmos.subthreshold_swing
        for delta_vt in (0.15, 0.264):
            ratio = device.off_current(1.0, vt_shift=-delta_vt) / (
                device.off_current(1.0)
            )
            assert math.log10(ratio) == pytest.approx(
                delta_vt / swing, rel=1e-6
            )

    def test_on_off_window_is_four_decades_class(self):
        # The Fig. 6 calibration anchor.
        device = Mosfet(soi_low_vt().transistors.nmos)
        window = math.log10(device.on_current(1.0) / device.off_current(1.0))
        assert 3.5 < window < 5.0


class TestFig1FeedsFig4:
    """The non-linear C and the optimum point share one C(V) model."""

    def test_register_capacitance_uses_the_gate_model(self):
        technology = bulk_cmos_06um()
        style = register_styles()["TSPC"]
        ratio = style.switched_capacitance(
            technology, 3.0
        ) / style.switched_capacitance(technology, 1.0)
        gate_ratio = technology.gate_cap.switched_capacitance(
            3.0
        ) / technology.gate_cap.switched_capacitance(1.0)
        # The register rise is driven by (and bounded by) the gate
        # model's rise.
        assert 1.0 < ratio <= gate_ratio + 0.05

    def test_optimum_supply_below_one_volt(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=22)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        best = optimizer.optimum(target, vt_bounds=(0.03, 0.45))
        assert best.vdd < 1.0

    def test_fixed_delay_locus_is_fig3(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        target = 2.0 * ring.stage_delay(1.0, 0.2)
        vdds = [
            ring.solve_vdd_for_delay(target, vt)
            for vt in (0.1, 0.2, 0.3)
        ]
        assert vdds == sorted(vdds)
