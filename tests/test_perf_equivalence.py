"""Equivalence tests for the hot-path performance layer.

Every fast path in the performance layer — the characterizer memo, the
table-driven simulator loop, the process-pool grid fan-out, and the
corner-cached optimizer — must be *bit-identical* to the reference
path it accelerates.  These tests pin that contract.
"""

import pytest

from repro.analysis.contour import energy_ratio_surface
from repro.analysis.parallel import map_grid, map_items, resolve_workers
from repro.analysis.sweep import sweep_2d
from repro.analysis.variation import MonteCarloAnalyzer
from repro.circuits.builders import pipelined_adder, ripple_carry_adder
from repro.device.technology import soi_low_vt, soias_technology
from repro.errors import AnalysisError, CharacterizationError, SimulationError
from repro.isa.instructions import FUNCTIONAL_UNITS
from repro.isa.machine import Machine
from repro.isa.profiler import profile_program
from repro.isa.workloads import WORKLOAD_NAMES, build as build_workload
from repro.power.energy import ModuleEnergyParameters
from repro.power.optimizer import (
    FixedThroughputOptimizer,
    RingOscillatorModel,
)
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer


@pytest.fixture(scope="module")
def tech():
    return soi_low_vt()


@pytest.fixture(scope="module")
def cells():
    return standard_cells()


# ----------------------------------------------------------------------
# Characterizer memo vs uncached reference
# ----------------------------------------------------------------------
class TestCharacterizerCacheEquivalence:
    VDDS = (0.4, 0.7, 1.0)
    LOADS = (5e-15, 20e-15)
    SHIFTS = (-0.05, 0.0, 0.1)

    def test_all_memoized_methods_bit_identical(self, tech, cells):
        cached = CellCharacterizer(tech)
        uncached = CellCharacterizer(tech, cache=False)
        for name in ("INV", "NAND2", "NOR3", "XOR2", "MUX2", "OAI21"):
            cell = cells[name]
            for vdd in self.VDDS:
                for shift in self.SHIFTS:
                    assert cached.pull_down_current(
                        cell, vdd, shift
                    ) == uncached.pull_down_current(cell, vdd, shift)
                    assert cached.pull_up_current(
                        cell, vdd, shift
                    ) == uncached.pull_up_current(cell, vdd, shift)
                    assert cached.leakage_current(
                        cell, vdd, vt_shift=shift
                    ) == uncached.leakage_current(cell, vdd, vt_shift=shift)
                    assert cached.fanout_delay(
                        cell, vdd, fanout=3, vt_shift=shift
                    ) == uncached.fanout_delay(
                        cell, vdd, fanout=3, vt_shift=shift
                    )
                    for load in self.LOADS:
                        assert cached.propagation_delay(
                            cell, vdd, load, vt_shift=shift
                        ) == uncached.propagation_delay(
                            cell, vdd, load, vt_shift=shift
                        )
                for load in self.LOADS:
                    assert cached.energy_per_transition(
                        cell, vdd, load
                    ) == uncached.energy_per_transition(cell, vdd, load)
                    assert cached.short_circuit_energy(
                        cell, vdd, load, 50e-12
                    ) == uncached.short_circuit_energy(
                        cell, vdd, load, 50e-12
                    )
        assert cached.cache_size > 0
        assert uncached.cache_size == 0

    def test_characterize_summary_identical(self, tech, cells):
        cached = CellCharacterizer(tech)
        uncached = CellCharacterizer(tech, cache=False)
        for name in ("INV", "AOI21", "BUF"):
            assert cached.characterize(
                cells[name], 0.9
            ) == uncached.characterize(cells[name], 0.9)

    def test_repeat_queries_hit_the_memo(self, tech, cells):
        characterizer = CellCharacterizer(tech)
        first = characterizer.propagation_delay(cells["INV"], 1.0, 10e-15)
        size = characterizer.cache_size
        second = characterizer.propagation_delay(cells["INV"], 1.0, 10e-15)
        assert first == second
        assert characterizer.cache_size == size

    def test_clear_cache_empties_and_preserves_values(self, tech, cells):
        characterizer = CellCharacterizer(tech)
        before = characterizer.leakage_current(cells["NAND2"], 1.0)
        characterizer.clear_cache()
        assert characterizer.cache_size == 0
        assert characterizer.leakage_current(cells["NAND2"], 1.0) == before

    def test_validation_still_raises_with_cache_on(self, tech, cells):
        characterizer = CellCharacterizer(tech)
        with pytest.raises(CharacterizationError):
            characterizer.propagation_delay(cells["INV"], -1.0, 10e-15)
        with pytest.raises(CharacterizationError):
            characterizer.propagation_delay(cells["INV"], 1.0, -5e-15)

    def test_distinct_technologies_do_not_share_entries(self, cells):
        a = CellCharacterizer(soi_low_vt())
        b = CellCharacterizer(soias_technology())
        assert a.propagation_delay(
            cells["INV"], 1.0, 10e-15
        ) != b.propagation_delay(cells["INV"], 1.0, 10e-15)


# ----------------------------------------------------------------------
# Simulator fast path vs reference event loop
# ----------------------------------------------------------------------
class TestSimulatorFastPathEquivalence:
    def test_ripple_carry_adder_reports_identical(self, tech):
        netlist = ripple_carry_adder(8)
        vectors = random_bus_vectors({"a": 8, "b": 8}, count=80, seed=7)
        reference = SwitchLevelSimulator(netlist, tech, 1.0)
        fast = SwitchLevelSimulator(netlist, tech, 1.0)
        assert reference.run_vectors(vectors) == fast.run_vectors_fast(
            vectors
        )

    def test_registered_circuit_reports_identical(self, tech):
        netlist = pipelined_adder(8, stages=2)
        vectors = random_bus_vectors({"a": 8, "b": 8}, count=40, seed=3)
        reference = SwitchLevelSimulator(netlist, tech, 1.0)
        fast = SwitchLevelSimulator(netlist, tech, 1.0)
        assert reference.run_vectors(vectors) == fast.run_vectors_fast(
            vectors
        )

    def test_final_state_matches_reference(self, tech):
        netlist = ripple_carry_adder(4)
        vectors = random_bus_vectors({"a": 4, "b": 4}, count=25, seed=11)
        reference = SwitchLevelSimulator(netlist, tech, 1.0)
        fast = SwitchLevelSimulator(netlist, tech, 1.0)
        reference.run_vectors(vectors)
        fast.run_vectors_fast(vectors)
        assert fast.state == reference.state
        assert fast.now_fs == reference.now_fs

    def test_fast_path_validates_inputs_like_reference(self, tech):
        netlist = ripple_carry_adder(4)
        simulator = SwitchLevelSimulator(netlist, tech, 1.0)
        good = random_bus_vectors({"a": 4, "b": 4}, count=1, seed=0)[0]
        with pytest.raises(SimulationError):
            simulator.run_vectors_fast([dict(good, nosuch=1)])
        with pytest.raises(SimulationError):
            simulator.run_vectors_fast([dict(good, **{"a[0]": 2})])


# ----------------------------------------------------------------------
# Parallel grid fan-out vs serial
# ----------------------------------------------------------------------
def _grid_fn(x, y):
    return None if y > x else x * 10.0 + y


def _item_fn(x):
    return x * x + 1.0


MODULE = ModuleEnergyParameters(
    name="eqtest",
    switched_capacitance_f=45e-12,
    leakage_low_vt_a=2.0e-6,
    leakage_high_vt_a=4.0e-9,
    back_gate_capacitance_f=18e-12,
    back_gate_swing_v=2.0,
)


class TestParallelEquivalence:
    XS = [0.1 * i for i in range(1, 9)]
    YS = [0.05 * i for i in range(1, 7)]

    def test_map_grid_matches_serial_sweep(self):
        serial = sweep_2d("x", "y", "z", self.XS, self.YS, _grid_fn)
        rows = map_grid(_grid_fn, self.XS, self.YS, workers=2)
        assert tuple(tuple(row) for row in rows) == serial.zs

    def test_sweep_2d_workers_matches_serial(self):
        serial = sweep_2d("x", "y", "z", self.XS, self.YS, _grid_fn)
        parallel = sweep_2d(
            "x", "y", "z", self.XS, self.YS, _grid_fn, workers=2
        )
        assert parallel == serial

    def test_map_items_matches_serial(self):
        items = [0.25 * i for i in range(17)]
        assert map_items(_item_fn, items, workers=2) == [
            _item_fn(x) for x in items
        ]

    # The fallback now announces itself once per process (see
    # tests/analysis/test_parallel_thresholds.py); this test only cares
    # about the results.
    @pytest.mark.filterwarnings("ignore:map_items:RuntimeWarning")
    def test_closure_falls_back_to_serial(self):
        offset = 2.0
        rows = map_grid(
            lambda x, y: x + y + offset, [1.0, 2.0], [3.0], workers=2
        )
        assert rows == [[6.0], [7.0]]

    def test_energy_ratio_surface_workers_parity(self):
        grid = [i / 12 for i in range(1, 13)]
        serial = energy_ratio_surface(MODULE, 1.0, 1e-6, grid, grid)
        parallel = energy_ratio_surface(
            MODULE, 1.0, 1e-6, grid, grid, workers=2
        )
        assert parallel.grid == serial.grid

    def test_monte_carlo_workers_parity(self, tech, cells):
        serial = MonteCarloAnalyzer(tech, n_samples=24, workers=0)
        parallel = MonteCarloAnalyzer(tech, n_samples=24, workers=2)
        inv = cells["INV"]
        assert (
            parallel.delay_distribution(inv, 0.8).samples
            == serial.delay_distribution(inv, 0.8).samples
        )
        assert (
            parallel.leakage_distribution(inv, 0.8).samples
            == serial.leakage_distribution(inv, 0.8).samples
        )

    def test_resolve_workers_validates(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(AnalysisError):
            resolve_workers(-1)

    def test_resolve_workers_env_override(self, monkeypatch):
        """Precedence: explicit ``workers=`` > REPRO_WORKERS > cpus.

        Scheduler workers export ``REPRO_WORKERS=0`` so nested
        ``map_items(workers=None)`` calls stay serial (no fork bomb on
        a saturated host); an explicit argument must still win.
        """
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2  # explicit arg beats the env
        assert resolve_workers(0) == 0
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == 0
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) >= 1  # falls back to cpu count

    def test_resolve_workers_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(AnalysisError, match="REPRO_WORKERS"):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(AnalysisError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_picklable_probe_memoized_per_function(self):
        from repro.analysis.parallel import _PICKLABLE_MEMO, _picklable

        def local_fn(x):
            return x

        assert _picklable(resolve_workers) is True
        assert _PICKLABLE_MEMO.get(resolve_workers) is True
        # Closures/local functions pickle by reference lookup and fail;
        # the negative result is memoized too.
        assert _picklable(local_fn) is False
        assert _PICKLABLE_MEMO.get(local_fn) is False
        # The memo answers without re-probing: poison pickle.dumps and
        # confirm the cached verdicts still come back.
        import pickle as pickle_module
        from unittest import mock

        with mock.patch.object(
            pickle_module, "dumps",
            side_effect=AssertionError("re-probed a memoized callable"),
        ):
            assert _picklable(resolve_workers) is True
            assert _picklable(local_fn) is False

    def test_picklable_handles_unhashable_callables(self):
        from repro.analysis.parallel import _picklable

        class UnhashableCallable:
            __hash__ = None

            def __call__(self, x):
                return x

        fn = UnhashableCallable()
        assert _picklable(fn) in (True, False)
        assert _picklable(fn) == _picklable(fn)


# ----------------------------------------------------------------------
# Corner-cached optimizer vs seed-style uncached corners
# ----------------------------------------------------------------------
class TestOptimizerCornerCacheEquivalence:
    def test_sweep_identical_to_uncached_corners(self, tech):
        vts = [0.06 + 0.06 * i for i in range(5)]

        def run(ring):
            optimizer = FixedThroughputOptimizer(ring, cycle_stages=202)
            target = 4.0 * ring.stage_delay(1.0, 0.2)
            return [
                (p.vt, p.vdd, p.energy_per_cycle_j, p.leakage_energy_j)
                for p in optimizer.sweep(vts, target)
            ]

        cached_ring = RingOscillatorModel(tech, stages=101)
        uncached_ring = RingOscillatorModel(tech, stages=101)
        uncached_ring._corner = lambda vt: CellCharacterizer(
            tech.with_vt(vt), cache=False
        )
        assert run(cached_ring) == run(uncached_ring)
        assert len(cached_ring._corners) > 0


# ----------------------------------------------------------------------
# Decoded ISA engine + counter profiler vs reference stepper
# ----------------------------------------------------------------------
class TestDecodedInterpreterEquivalence:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_state_identical(self, name):
        program = build_workload(name, scale=16)
        reference = Machine(program)
        reference.run()
        fast = Machine(build_workload(name, scale=16))
        retired = fast.run_fast()
        assert retired == reference.instructions_retired
        assert fast.registers == reference.registers
        assert fast.memory == reference.memory
        assert fast.pc == reference.pc
        assert fast.halted == reference.halted

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_profile_identical(self, name):
        fast = profile_program(build_workload(name, scale=16), engine="fast")
        ref = profile_program(
            build_workload(name, scale=16), engine="reference"
        )
        assert fast.total_instructions == ref.total_instructions
        for unit in FUNCTIONAL_UNITS:
            assert fast.stats(unit) == ref.stats(unit), (name, unit)
