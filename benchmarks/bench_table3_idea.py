"""Table 3 — profiling the IDEA encryption workload.

Paper shape: IDEA is the multiplier's workload — its mod-(2^16+1)
group multiplication makes the multiplier fga far higher than in the
SPEC integer codes (which barely touch it), while the adder stays busy
with the mod-2^16 additions and addressing.
"""

from repro.analysis.tables import format_table
from repro.isa.profiler import profile_program
from repro.isa.workloads import idea

UNITS = ("adder", "shifter", "multiplier")


def generate_table3():
    program = idea.build_program(idea.random_blocks(8, seed=0))
    return profile_program(program)


def test_table3_idea(benchmark, record):
    profile = benchmark(generate_table3)

    # Shape criteria (Table 3 signature).
    assert profile.fga("multiplier") > 0.03
    assert profile.fga("adder") > 0.3
    # IDEA's multiplier dominance relative to the SPEC kernels is
    # checked cross-table in tests/test_experiments.py.

    rows = [["(total instructions)", profile.total_instructions, "", ""]]
    for unit in UNITS:
        stats = profile.stats(unit)
        rows.append([unit, stats.uses, stats.fga, stats.bga])
    record(
        "table3_idea",
        format_table(
            ["unit", "number", "fga", "bga"],
            rows,
            title="Table 3: profiling results, IDEA encryption",
        ),
    )
