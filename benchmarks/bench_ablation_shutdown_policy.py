"""Ablation — system shutdown policies on an X-session-like trace.

The paper motivates burst-mode technologies with X-server traces
(>95 % idle "under ideal shutdown conditions", citing predictive
shutdown).  This bench evaluates timeout vs predictive vs oracle
policies on a synthetic heavy-tailed session, using state powers taken
from the SOIAS energy model (active / idle-low-V_T / off-high-V_T).
"""

from repro.analysis.tables import format_table
from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import standard_datapath
from repro.core.shutdown import (
    OraclePolicy,
    PredictivePolicy,
    ShutdownCosts,
    TimeoutPolicy,
    evaluate_policy,
    synthetic_session_trace,
)


def generate_ablation():
    # Derive the three state powers from the adder module at 1 MHz.
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    unit = standard_datapath(width=8, stimulus_vectors=60)["adder"]
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)

    active = (
        module.switched_capacitance_f * flow.vdd**2 / flow.t_cycle_s
        + module.leakage_low_vt_a * flow.vdd
    )
    idle = module.leakage_low_vt_a * flow.vdd
    off = module.leakage_high_vt_a * flow.vdd
    wakeup = module.back_gate_capacitance_f * module.back_gate_swing_v**2
    costs = ShutdownCosts(
        active_power_w=active,
        idle_power_w=idle,
        off_power_w=off,
        wakeup_energy_j=wakeup,
        wakeup_latency_cycles=2,
        cycle_time_s=flow.t_cycle_s,
    )

    trace = synthetic_session_trace(
        n_periods=400, mean_busy_cycles=50, mean_idle_cycles=800, seed=7
    )
    breakeven = costs.breakeven_cycles
    policies = [
        ("always-on", TimeoutPolicy(10**12)),
        ("timeout=1", TimeoutPolicy(1)),
        ("timeout=break-even", TimeoutPolicy(max(int(breakeven), 1))),
        ("timeout=10x break-even", TimeoutPolicy(max(int(10 * breakeven), 1))),
        ("predictive", PredictivePolicy(breakeven)),
        ("oracle", OraclePolicy(breakeven)),
    ]
    reports = {
        name: evaluate_policy(trace, policy, costs, name)
        for name, policy in policies
    }
    return costs, reports


def test_ablation_shutdown_policy(benchmark, record):
    costs, reports = benchmark(generate_ablation)

    oracle = reports["oracle"]
    # Oracle dominates every honest policy.
    for name, report in reports.items():
        assert oracle.energy_j <= report.energy_j * (1.0 + 1e-9), name

    # Shutdown pays: the break-even timeout policy saves a large
    # fraction of the always-on energy on this deeply idle trace.
    assert reports["timeout=break-even"].saving_vs_always_on > 0.4

    # The predictive policy is competitive with the oracle (the cited
    # paper's claim).
    assert reports["predictive"].efficiency_vs_oracle > 0.6

    # Longer timeouts waste idle energy relative to the break-even one.
    assert (
        reports["timeout=10x break-even"].energy_j
        >= reports["timeout=break-even"].energy_j * 0.999
    )

    record(
        "ablation_shutdown_policy",
        format_table(
            [
                "policy",
                "energy [J]",
                "saving vs always-on",
                "off fraction",
                "wakeups",
                "latency [cycles]",
            ],
            [
                [
                    name,
                    r.energy_j,
                    r.saving_vs_always_on,
                    r.off_fraction,
                    r.wakeups,
                    r.latency_penalty_cycles,
                ]
                for name, r in reports.items()
            ],
            title=(
                "Ablation: shutdown policies, X-session-like trace "
                f"(break-even {costs.breakeven_cycles:.0f} cycles)"
            ),
        ),
    )
