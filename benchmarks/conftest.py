"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one paper table or figure: it times the
generating computation with pytest-benchmark, asserts the DESIGN.md
shape criteria, and records the reproduced rows/series both to stdout
and to ``benchmarks/output/<experiment>.txt`` so the numbers survive
the capture-by-default pytest run (EXPERIMENTS.md quotes them).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def record():
    """Write an experiment's rendered output to disk and stdout."""

    def _record(experiment: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {experiment} ===")
        print(text)

    return _record
