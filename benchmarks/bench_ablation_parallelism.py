"""Ablation — parallelism-driven voltage scaling and its leakage limit.

The dual of pipelining: replicate a unit N ways, run each replica N
times slower, and lower the supply until each replica just meets its
relaxed deadline.  Switching energy per operation falls ~quadratically
with the supply — but all N replicas leak all the time, so with the
calibrated low-V_T leakage there is an *optimum degree of parallelism*
beyond which more hardware loses.  This is the architecture-level
mirror of the paper's Fig. 4 optimum.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.power.estimator import PowerEstimator
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

WIDTH = 16
PARALLELISM = (1, 2, 4, 8, 16, 32, 64)
#: Extra switched capacitance per replica for the distribution /
#: recombination network (muxes, latches) — the paper's own analysis
#: charges a comparable architectural overhead.
DISTRIBUTION_OVERHEAD = 0.15


def _solve_vdd(analyzer, netlist, target_s, bounds=(0.05, 1.5)):
    low, high = bounds
    if analyzer.analyze(netlist, high).delay_s > target_s:
        raise OptimizationError("target unreachable")
    for _ in range(48):
        mid = 0.5 * (low + high)
        if analyzer.analyze(netlist, mid).delay_s > target_s:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def generate_ablation():
    technology = soi_low_vt()
    adder = ripple_carry_adder(WIDTH)
    analyzer = StaticTimingAnalyzer(technology)
    estimator = PowerEstimator(adder, technology)
    base_period = analyzer.analyze(adder, 1.0).delay_s
    stimulus = random_bus_vectors({"a": WIDTH, "b": WIDTH}, 60, seed=12)

    rows = []
    for n in PARALLELISM:
        vdd = 1.0 if n == 1 else _solve_vdd(
            analyzer, adder, n * base_period
        )
        report = SwitchLevelSimulator(adder, technology, vdd).run_vectors(
            stimulus
        )
        switching = report.switching_energy_per_cycle(
            adder, technology, vdd
        ) * (1.0 + DISTRIBUTION_OVERHEAD * (n > 1))
        # All n replicas leak for the whole operation period.
        leakage = (
            n * estimator.leakage_current(vdd) * vdd * base_period
        )
        rows.append(
            {
                "n": n,
                "vdd": vdd,
                "switching": switching,
                "leakage": leakage,
                "total": switching + leakage,
            }
        )
    return base_period, rows


def test_ablation_parallelism(benchmark, record):
    base_period, rows = benchmark(generate_ablation)

    # Supplies fall monotonically with parallelism.
    vdds = [r["vdd"] for r in rows]
    assert vdds == sorted(vdds, reverse=True)

    # Switching energy per op falls with parallelism...
    switching = [r["switching"] for r in rows]
    assert switching[-1] < switching[0]

    # ...while the leakage term eventually turns the total back up:
    # an interior optimum N exists.
    totals = [r["total"] for r in rows]
    best = min(range(len(totals)), key=totals.__getitem__)
    assert 0 < best, "parallelism should beat the N=1 design"
    assert totals[best] < 0.8 * totals[0]
    assert totals[-1] > totals[best], (
        "leakage should punish extreme parallelism"
    )

    record(
        "ablation_parallelism",
        format_table(
            ["N", "V_DD [V]", "E_sw/op [J]", "E_leak/op [J]",
             "E_total/op [J]"],
            [
                [r["n"], r["vdd"], r["switching"], r["leakage"], r["total"]]
                for r in rows
            ],
            title=(
                f"Ablation: N-way parallel {WIDTH}-bit adders at "
                f"iso-throughput ({base_period:.3e} s/op); optimum "
                f"N = {rows[best]['n']}"
            ),
        ),
    )
