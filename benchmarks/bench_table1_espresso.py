"""Table 1 — profiling the espresso-like workload.

Paper shape: espresso is dominated by bit-twiddling cube operations —
heavy adder use (addressing, loops, compares), significant shifter
use, and essentially zero multiplications; bga << fga for the adder.
"""

from repro.analysis.tables import format_table
from repro.isa.profiler import profile_program
from repro.isa.workloads import espresso_like

UNITS = ("adder", "shifter", "multiplier")


def generate_table1():
    program = espresso_like.build_program(n_cubes=48, n_vars=10, seed=0)
    return profile_program(program)


def test_table1_espresso(benchmark, record):
    profile = benchmark(generate_table1)

    # Shape criteria (Table 1 signature).
    assert profile.fga("adder") > 0.5
    assert profile.fga("shifter") > 0.05
    assert profile.fga("multiplier") == 0.0
    assert profile.bga("adder") < 0.5 * profile.fga("adder")
    for unit in UNITS:
        assert profile.bga(unit) <= profile.fga(unit) + 1e-12

    rows = [["(total instructions)", profile.total_instructions, "", ""]]
    for unit in UNITS:
        stats = profile.stats(unit)
        rows.append([unit, stats.uses, stats.fga, stats.bga])
    record(
        "table1_espresso",
        format_table(
            ["unit", "number", "fga", "bga"],
            rows,
            title="Table 1: profiling results, espresso-like kernel",
        ),
    )
