"""Ablation — series-stack leakage suppression.

Subthreshold leakage through a stack of off devices is far below a
single off device: the intermediate node floats up, reverse-biasing
the upper gate and relieving DIBL.  This is why NAND-style pull-downs
(and MTCMOS sleep stacks) leak less than inverters, and it interacts
with V_T: the suppression factor itself depends on swing and DIBL.
"""

from repro.analysis.tables import format_table
from repro.device.leakage import StackLeakageModel
from repro.device.technology import soi_low_vt

DEPTHS = (1, 2, 3, 4)
THRESHOLDS = (0.1, 0.184, 0.3, 0.45)
VDD = 1.0


def generate_ablation():
    table = {}
    for vt in THRESHOLDS:
        model = StackLeakageModel(
            soi_low_vt(vt0=vt).transistors.nmos
        )
        table[vt] = {
            depth: model.current([2.0] * depth, VDD)
            for depth in DEPTHS
        }
    return table


def test_ablation_stack_effect(benchmark, record):
    table = benchmark(generate_ablation)

    for vt, by_depth in table.items():
        currents = [by_depth[d] for d in DEPTHS]
        # Deeper stacks leak monotonically less...
        assert currents == sorted(currents, reverse=True), vt
        # ...with a meaningful 2-stack suppression factor.
        assert currents[0] / currents[1] > 2.0, vt

    # Leakage falls exponentially with V_T at every depth.
    for depth in DEPTHS:
        by_vt = [table[vt][depth] for vt in THRESHOLDS]
        assert by_vt == sorted(by_vt, reverse=True)
        assert by_vt[0] / by_vt[-1] > 1e3

    rows = []
    for vt in THRESHOLDS:
        base = table[vt][1]
        rows.append(
            [vt]
            + [table[vt][d] for d in DEPTHS]
            + [base / table[vt][2]]
        )
    record(
        "ablation_stack_effect",
        format_table(
            ["V_T [V]"]
            + [f"I(depth={d}) [A]" for d in DEPTHS]
            + ["2-stack suppression"],
            rows,
            title=(
                "Ablation: stack-effect leakage, 2um NMOS stacks at "
                "V_DD = 1 V"
            ),
        ),
    )
