"""Ablation — the static limit of supply scaling (noise margins).

Section 3's optimum supplies land well below 1 V (Fig. 4), which only
makes sense if logic still *regenerates* there.  This bench sweeps the
inverter voltage-transfer characteristics down the supply axis and
finds the minimum workable V_DD for several noise-margin budgets —
landing at the classic few-times-``n kT/q`` floor, far below the
Fig. 4 optima (so the optimizer, not regeneration, is the binding
constraint).
"""

from repro.analysis.tables import format_table
from repro.circuits.dc import InverterDcAnalysis
from repro.device.technology import soi_low_vt
from repro.units import LN10, thermal_voltage

SUPPLIES = (1.0, 0.5, 0.3, 0.2, 0.12, 0.08)
BUDGETS = (0.25, 0.3, 0.35)


def generate_ablation():
    dc = InverterDcAnalysis(soi_low_vt())
    rows = []
    for vdd in SUPPLIES:
        margins = dc.noise_margins(vdd)
        rows.append(
            [
                vdd,
                dc.switching_threshold(vdd),
                dc.peak_gain(vdd),
                margins.low,
                margins.high,
                margins.worst / vdd,
            ]
        )
    floors = {budget: dc.minimum_supply(budget) for budget in BUDGETS}
    return rows, floors


def test_ablation_minimum_vdd(benchmark, record):
    rows, floors = benchmark(generate_ablation)

    # Regeneration holds across the whole sweep (all margins positive).
    for row in rows:
        assert row[3] > 0.0 and row[4] > 0.0

    # Peak gain exceeds 1 everywhere swept.
    assert all(row[2] > 1.0 for row in rows)

    # Stricter budgets raise the floor; floors are in the
    # ~100 mV (few n*kT/q) class, below the Fig. 4 optimum V_DD.
    ordered = [floors[b] for b in sorted(floors)]
    assert ordered == sorted(ordered)
    n_phi_t = (
        soi_low_vt().transistors.nmos.subthreshold_swing / LN10
    )
    for floor in floors.values():
        assert floor < 0.25
        assert floor > 1.0 * n_phi_t  # above one thermal decade unit

    record(
        "ablation_minimum_vdd",
        format_table(
            ["V_DD [V]", "V_M [V]", "peak gain", "NM_L [V]", "NM_H [V]",
             "worst/V_DD"],
            rows,
            title="Ablation: inverter VTC metrics vs supply (low-V_T SOI)",
        )
        + "\n\n"
        + format_table(
            ["margin budget", "minimum V_DD [V]"],
            [[b, floors[b]] for b in sorted(floors)],
            title=(
                "Minimum workable supply (kT/q = "
                f"{thermal_voltage() * 1e3:.1f} mV)"
            ),
        ),
    )
