"""Fig. 9 — activity histogram, 8-bit adder, correlated inputs.

Paper stimulus: one operand fixed, the other incrementing 0..255.
Shape: activity collapses toward low transition probabilities — the
histogram mass moves into the leftmost bins and the mean drops well
below the random-stimulus case, because low-order counter bits toggle
often but high-order bits (and the logic they feed) barely move.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import counting_bus_vectors, random_bus_vectors

VECTORS = 500
BINS = 12
FIXED_OPERAND = 85  # 0b01010101, mid-weight constant


def generate_fig9():
    adder = ripple_carry_adder(8)
    technology = soi_low_vt()
    correlated = counting_bus_vectors(
        "b", 8, VECTORS,
        fixed_buses={"a": FIXED_OPERAND}, fixed_widths={"a": 8},
    )
    correlated_report = SwitchLevelSimulator(
        adder, technology, vdd=1.0
    ).run_vectors(correlated)
    random_report = SwitchLevelSimulator(
        adder, technology, vdd=1.0
    ).run_vectors(
        random_bus_vectors({"a": 8, "b": 8}, VECTORS, seed=1996)
    )
    return correlated_report, random_report


def test_fig9_activity_correlated(benchmark, record):
    correlated, random_report = benchmark(generate_fig9)

    # Shape 1: correlated stimulus cuts mean activity by > 2x.
    assert correlated.mean_activity() < 0.5 * random_report.mean_activity()

    # Shape 2: histogram mass concentrates in the low bins (compare on
    # a common probability axis).
    edges, random_counts = random_report.histogram(bins=BINS)
    _, correlated_counts = correlated.histogram(
        bins=BINS, max_probability=edges[-1]
    )
    low_random = sum(random_counts[:3]) / sum(random_counts)
    low_correlated = sum(correlated_counts[:3]) / sum(correlated_counts)
    assert low_correlated > 2.0 * low_random

    rows = [
        [
            f"{edges[i]:.3f}-{edges[i + 1]:.3f}",
            correlated_counts[i],
            random_counts[i],
        ]
        for i in range(BINS)
    ]
    record(
        "fig9_activity_correlated",
        format_table(
            ["transition probability", "nodes (correlated)", "nodes (random)"],
            rows,
            title=(
                "Fig. 9: activity histogram, 8-bit ripple adder, "
                f"a = {FIXED_OPERAND} fixed, b = 0..255 counting "
                f"(mean {correlated.mean_activity():.3f} vs random "
                f"{random_report.mean_activity():.3f})"
            ),
        ),
    )
