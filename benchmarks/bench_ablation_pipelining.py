"""Ablation — pipelining-driven voltage scaling (the paper's ref [1]).

The signature architecture-driven strategy: cut a 16-bit adder's carry
chain into pipeline stages, creating timing slack, then spend the
slack on supply voltage at *iso-throughput*.  Registers cost area,
clock load and switched capacitance — and still lose to the quadratic
C V^2 win.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import pipelined_adder
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

WIDTH = 16
STAGES = (1, 2, 4)
VECTORS = 80


def _solve_vdd(analyzer, netlist, target_s, bounds=(0.15, 1.5)):
    low, high = bounds
    if analyzer.analyze(netlist, high).delay_s > target_s:
        raise OptimizationError("target unreachable at max V_DD")
    for _ in range(48):
        mid = 0.5 * (low + high)
        if analyzer.analyze(netlist, mid).delay_s > target_s:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def _clock_energy_per_cycle(netlist, technology, vdd):
    """Clock-pin load of every register, charged once per cycle [J]."""
    length = technology.drawn_length_um
    pin = technology.gate_cap.gate_capacitance(
        2.0, length, vdd
    ) + technology.gate_cap.gate_capacitance(4.0, length, vdd)
    return len(netlist.registers) * pin * vdd * vdd


def generate_ablation():
    technology = soi_low_vt()
    analyzer = StaticTimingAnalyzer(technology)
    designs = {s: pipelined_adder(WIDTH, s) for s in STAGES}

    # Throughput target: the combinational adder's speed at 1 V.
    target = analyzer.analyze(designs[1], 1.0).delay_s

    rows = {}
    for stages, netlist in designs.items():
        vdd = 1.0 if stages == 1 else _solve_vdd(analyzer, netlist, target)
        stimulus = random_bus_vectors(
            {"a": WIDTH, "b": WIDTH}, VECTORS, seed=1996
        )
        simulator = SwitchLevelSimulator(netlist, technology, vdd)
        if netlist.is_sequential:
            report = simulator.run_clocked(stimulus)
        else:
            report = simulator.run_vectors(stimulus)
        logic_energy = report.switching_energy_per_cycle(
            netlist, technology, vdd
        )
        clock_energy = _clock_energy_per_cycle(netlist, technology, vdd)
        rows[stages] = {
            "gates": len(netlist.instances),
            "registers": len(netlist.registers),
            "vdd": vdd,
            "cycle": analyzer.analyze(netlist, vdd).delay_s,
            "logic_energy": logic_energy,
            "clock_energy": clock_energy,
            "total_energy": logic_energy + clock_energy,
            "latency_cycles": stages - 1,
        }
    return target, rows


def test_ablation_pipelining(benchmark, record):
    target, rows = benchmark(generate_ablation)

    # Every design meets the throughput target.
    for stages, r in rows.items():
        assert r["cycle"] <= target * 1.01, stages

    # Deeper pipelines run at monotonically lower supplies...
    vdds = [rows[s]["vdd"] for s in STAGES]
    assert vdds == sorted(vdds, reverse=True)
    assert rows[4]["vdd"] < 0.6 * rows[1]["vdd"]

    # ...and despite real register/clock overhead, total energy per
    # operation drops.
    assert rows[4]["total_energy"] < rows[1]["total_energy"]
    assert rows[4]["clock_energy"] > 0.0

    record(
        "ablation_pipelining",
        format_table(
            ["stages", "gates", "registers", "V_DD [V]", "cycle [s]",
             "E_logic [J]", "E_clock [J]", "E_total/op [J]",
             "latency [cycles]"],
            [
                [
                    s,
                    rows[s]["gates"],
                    rows[s]["registers"],
                    rows[s]["vdd"],
                    rows[s]["cycle"],
                    rows[s]["logic_energy"],
                    rows[s]["clock_energy"],
                    rows[s]["total_energy"],
                    rows[s]["latency_cycles"],
                ]
                for s in STAGES
            ],
            title=(
                f"Ablation: pipelining a {WIDTH}-bit adder at "
                f"iso-throughput ({target:.3e} s/op)"
            ),
        ),
    )
