"""Fig. 1 — switched capacitance vs V_DD for three register styles.

Paper shape: all three curves rise with V_DD (the non-linear gate
capacitance), ordered C2MOS > TSPC > LCLR by clock loading and device
count.
"""

from repro.analysis.tables import format_table
from repro.device.technology import bulk_cmos_06um
from repro.tech.cells import register_styles
from repro.units import to_ff

VDD_SWEEP = [1.0 + 0.25 * i for i in range(9)]  # 1.0 .. 3.0 V
STYLE_ORDER = ["LCLR", "TSPC", "C2MOS"]


def generate_fig1():
    """C_sw(V_DD) per style [F], plus the technology used."""
    technology = bulk_cmos_06um()
    styles = register_styles()
    curves = {
        name: [
            styles[name].switched_capacitance(technology, vdd)
            for vdd in VDD_SWEEP
        ]
        for name in STYLE_ORDER
    }
    return curves


def test_fig1_register_capacitance(benchmark, record):
    curves = benchmark(generate_fig1)

    # Shape criterion 1: every curve rises monotonically with V_DD.
    for name, values in curves.items():
        assert values == sorted(values), f"{name} not monotone"

    # Shape criterion 2: C2MOS > TSPC > LCLR at every supply.
    for i in range(len(VDD_SWEEP)):
        assert (
            curves["C2MOS"][i] > curves["TSPC"][i] > curves["LCLR"][i]
        )

    # Shape criterion 3: the rise is a real effect, not noise (> 5 %
    # from 1 V to 3 V).
    for name, values in curves.items():
        assert values[-1] > 1.05 * values[0], name

    rows = [
        [vdd] + [to_ff(curves[name][i]) for name in STYLE_ORDER]
        for i, vdd in enumerate(VDD_SWEEP)
    ]
    record(
        "fig1_register_capacitance",
        format_table(
            ["V_DD [V]"] + [f"{n} C_sw [fF]" for n in STYLE_ORDER],
            rows,
            title=(
                "Fig. 1: switched capacitance vs V_DD "
                "(bulk 0.6um, data activity 1.0)"
            ),
        ),
    )
