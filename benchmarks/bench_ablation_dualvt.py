"""Ablation — dual-V_T assignment (static leakage recovery).

Section 4's multiple-threshold process, used statically: every gate
with timing slack gets the high threshold; low-V_T devices survive
only on the critical path.  Swept across delay budgets on two adder
architectures — the slack-rich carry-select design converts more of
its gates than the slack-poor ripple design.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import carry_select_adder, ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.power.dualvt import DualVtOptimizer

BUDGETS = (1.0, 1.05, 1.15)
WIDTH = 12


def generate_ablation():
    technology = soi_low_vt()
    designs = {
        "ripple": ripple_carry_adder(WIDTH),
        "carry-select": carry_select_adder(WIDTH, 4),
    }
    rows = []
    results = {}
    for name, netlist in designs.items():
        optimizer = DualVtOptimizer(netlist, technology, vdd=1.0)
        for budget in BUDGETS:
            result = optimizer.optimize(delay_budget=budget)
            results[(name, budget)] = result
            rows.append(
                [
                    name,
                    budget,
                    len(result.high_vt_gates),
                    result.total_gates,
                    result.high_vt_fraction,
                    result.leakage_reduction,
                    result.delay_penalty,
                ]
            )
    return rows, results


def test_ablation_dualvt(benchmark, record):
    rows, results = benchmark(generate_ablation)

    for (name, budget), result in results.items():
        # Timing always honoured.
        assert result.delay_s <= result.baseline_delay_s * budget * 1.001
        # Leakage only improves.
        assert result.leakage_reduction >= 1.0

    # Zero-cost assignment already recovers substantial leakage on
    # both architectures (the ripple chain leaves little slack, the
    # carry-select design plenty).
    assert results[("ripple", 1.0)].leakage_reduction > 1.5
    assert results[("carry-select", 1.0)].leakage_reduction > 3.0

    # Budgets monotone: more slack -> more high-V_T gates.
    for name in ("ripple", "carry-select"):
        fractions = [
            results[(name, b)].high_vt_fraction for b in BUDGETS
        ]
        assert fractions == sorted(fractions)

    # The slack-rich architecture converts a larger fraction.
    assert (
        results[("carry-select", 1.0)].high_vt_fraction
        > results[("ripple", 1.0)].high_vt_fraction
    )

    record(
        "ablation_dualvt",
        format_table(
            ["design", "delay budget", "high-V_T gates", "total",
             "fraction", "leakage reduction", "delay penalty"],
            rows,
            title=(
                f"Ablation: dual-V_T assignment, {WIDTH}-bit adders "
                "(high-V_T shift = 264 mV)"
            ),
        ),
    )
