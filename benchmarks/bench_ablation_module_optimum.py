"""Ablation — the Fig. 4 optimization on a real module.

The paper measured its optimum (V_DD, V_T) on ring oscillators; this
bench runs the same fixed-throughput optimization on the 8-bit adder
netlist with simulated activity, across utilizations (fraction of the
operation period the module actually computes).  The paper's claim —
"a circuit which has very low switching activity will require a high
threshold voltage" — appears as the optimum V_T climbing while the
utilization falls.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.power.optimizer import ModuleThroughputOptimizer
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

UTILIZATIONS = (1.0, 0.1, 0.02)


def generate_ablation():
    technology = soi_low_vt()
    adder = ripple_carry_adder(8)
    report = SwitchLevelSimulator(adder, technology, 1.0).run_vectors(
        random_bus_vectors({"a": 8, "b": 8}, 80, seed=1996)
    )
    optimizer = ModuleThroughputOptimizer(adder, technology, report)
    base_vt = technology.transistors.nmos.vt0
    target = 3.0 * optimizer.delay(1.0, base_vt)
    rows = []
    optima = {}
    for utilization in UTILIZATIONS:
        best = optimizer.optimum(target, utilization=utilization)
        optima[utilization] = best
        rows.append(
            [
                utilization,
                best.vt,
                best.vdd,
                best.energy_per_cycle_j,
                best.leakage_fraction,
            ]
        )
    return target, rows, optima


def test_ablation_module_optimum(benchmark, record):
    target, rows, optima = benchmark(generate_ablation)

    # Optimum V_T climbs as the module idles more.
    vts = [optima[u].vt for u in UTILIZATIONS]
    assert vts == sorted(vts)
    assert optima[0.02].vt > optima[1.0].vt + 0.02

    # Optimum supply stays below 1 V everywhere.
    for utilization in UTILIZATIONS:
        assert optima[utilization].vdd < 1.0

    # The optimum stays feasible: delay target honoured.
    for utilization in UTILIZATIONS:
        assert optima[utilization].stage_delay_s <= target * 1.01

    record(
        "ablation_module_optimum",
        format_table(
            ["utilization", "V_T* [V]", "V_DD* [V]", "E*/op [J]",
             "leak fraction"],
            rows,
            title=(
                "Ablation: fixed-throughput optimum on the 8-bit adder "
                f"netlist (target {target:.3e} s/op)"
            ),
        ),
    )
