"""Ablation — workload operand streams vs random stimulus.

The paper's recurring warning: "the node transition activity is a very
strong function of signal statistics" (Figs. 8-9 demonstrate it with a
synthetic counter).  Here the real thing: capture the operand pairs
each functional unit consumed while *executing the IDEA and CRC
workloads*, replay them into the unit netlists, and compare the
resulting switching activity/energy against the uniform-random
stimulus most flows default to.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    ripple_carry_adder,
)
from repro.device.technology import soi_low_vt
from repro.isa.machine import Machine
from repro.isa.operands import OperandTraceRecorder
from repro.isa.workloads import crc, idea
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

VECTORS = 120
VDD = 1.0


def _activity(netlist, technology, vectors):
    report = SwitchLevelSimulator(netlist, technology, VDD).run_vectors(
        vectors
    )
    return (
        report.mean_activity(),
        report.switching_energy_per_cycle(netlist, technology, VDD),
    )


def generate_ablation():
    technology = soi_low_vt()

    idea_machine = Machine(idea.build_program(idea.random_blocks(8)))
    idea_trace = OperandTraceRecorder(idea_machine)
    idea_machine.run()

    crc_machine = Machine(crc.build_program(16))
    crc_trace = OperandTraceRecorder(crc_machine)
    crc_machine.run()

    cases = [
        (
            "multiplier (IDEA)",
            array_multiplier(8),
            idea_trace.stimulus("multiplier", {"a": 8, "b": 8}, VECTORS),
            {"a": 8, "b": 8},
        ),
        (
            "adder (IDEA)",
            ripple_carry_adder(8),
            idea_trace.stimulus("adder", {"a": 8, "b": 8}, VECTORS),
            {"a": 8, "b": 8},
        ),
        (
            "shifter (CRC)",
            barrel_shifter(8),
            crc_trace.stimulus("shifter", {"a": 8, "s": 3}, VECTORS),
            {"a": 8, "s": 3},
        ),
    ]
    rows = []
    for label, netlist, traced_vectors, buses in cases:
        traced_alpha, traced_energy = _activity(
            netlist, technology, traced_vectors
        )
        random_alpha, random_energy = _activity(
            netlist,
            technology,
            random_bus_vectors(buses, len(traced_vectors), seed=1996),
        )
        rows.append(
            {
                "label": label,
                "traced_alpha": traced_alpha,
                "random_alpha": random_alpha,
                "traced_energy": traced_energy,
                "random_energy": random_energy,
                "overestimate": random_energy / traced_energy,
            }
        )
    return rows


def test_ablation_signal_statistics(benchmark, record):
    rows = benchmark(generate_ablation)

    # Real operand streams never exceed random activity here, and the
    # multiplier (repeated subkeys, structured data) is dramatic.
    for row in rows:
        assert row["traced_alpha"] <= row["random_alpha"] * 1.05, row["label"]
    multiplier = rows[0]
    assert multiplier["overestimate"] > 2.0

    record(
        "ablation_signal_statistics",
        format_table(
            ["unit (workload)", "alpha traced", "alpha random",
             "E traced [J]", "E random [J]", "random/traced"],
            [
                [
                    r["label"],
                    r["traced_alpha"],
                    r["random_alpha"],
                    r["traced_energy"],
                    r["random_energy"],
                    r["overestimate"],
                ]
                for r in rows
            ],
            title=(
                "Ablation: workload operand streams vs uniform random "
                "stimulus (random-stimulus power estimates overshoot)"
            ),
        ),
    )
