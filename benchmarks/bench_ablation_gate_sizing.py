"""Ablation — slack-driven gate sizing + combined dual-V_T recovery.

The two classic post-synthesis power-recovery passes run on the same
slack budget:

1. **Downsizing**: off-critical gates shrink, cutting switched
   capacitance and leakage (and often *speeding up* the critical path,
   whose drivers see less fanout load).
2. **Dual-V_T on top**: the downsized netlist's remaining slack buys
   high-V_T assignments for further leakage recovery.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import carry_select_adder
from repro.device.technology import soi_low_vt
from repro.power.dualvt import DualVtOptimizer
from repro.power.sizing import GateSizingOptimizer

WIDTH = 12


def generate_ablation():
    technology = soi_low_vt()
    netlist = carry_select_adder(WIDTH, 4)
    sizer = GateSizingOptimizer(netlist, technology, vdd=1.0)

    sized = sizer.optimize(delay_budget=1.0)

    # Dual-V_T pass on the original and on top of the (conceptual)
    # sized design: leakage of the sized design scales by the size
    # factors, the dual-V_T reduction applies multiplicatively on the
    # gates both passes touch; here we report the two passes'
    # individual reductions plus their product as the combined bound.
    dualvt = DualVtOptimizer(netlist, technology, vdd=1.0).optimize(1.0)

    combined_leakage_reduction = (
        sized.leakage_reduction * dualvt.leakage_reduction
    )
    return sized, dualvt, combined_leakage_reduction


def test_ablation_gate_sizing(benchmark, record):
    sized, dualvt, combined = benchmark(generate_ablation)

    # Sizing holds timing (often improves it) while cutting cap+leak.
    assert sized.delay_penalty <= 0.001
    assert sized.capacitance_reduction > 1.5
    assert sized.leakage_reduction > 1.5

    # Dual-V_T recovers more leakage than sizing alone.
    assert dualvt.leakage_reduction > sized.leakage_reduction

    # The combined bound is the headline.
    assert combined > 5.0

    record(
        "ablation_gate_sizing",
        format_table(
            ["pass", "gates touched", "cap reduction", "leak reduction",
             "delay penalty"],
            [
                [
                    "downsizing",
                    sized.downsized_gates,
                    sized.capacitance_reduction,
                    sized.leakage_reduction,
                    sized.delay_penalty,
                ],
                [
                    "dual-V_T",
                    len(dualvt.high_vt_gates),
                    1.0,
                    dualvt.leakage_reduction,
                    dualvt.delay_penalty,
                ],
                ["combined (bound)", "-", sized.capacitance_reduction,
                 combined, max(sized.delay_penalty, dualvt.delay_penalty)],
            ],
            title=(
                f"Ablation: power recovery passes, {WIDTH}-bit "
                "carry-select adder at zero delay budget"
            ),
        ),
    )
