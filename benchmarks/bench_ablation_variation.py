"""Ablation — V_T variation vs aggressive supply scaling.

Real silicon spreads around the nominal V_T; at the paper's sub-1-V
operating points this matters twice over:

* delay variability (CV) explodes as the overdrive shrinks, forcing a
  supply guard-band on top of the nominal Fig. 3 solve, and
* mean leakage exceeds the nominal corner (lognormal mean shift),
  inflating the Eq. 3/4 leakage terms.

This bench quantifies both for the library inverter.
"""

from repro.analysis.tables import format_table
from repro.analysis.variation import (
    MonteCarloAnalyzer,
    lognormal_leakage_amplification,
)
from repro.device.technology import soi_low_vt
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer

SUPPLIES = (1.2, 0.9, 0.6, 0.45, 0.35)
SIGMAS = (0.01, 0.03, 0.05)


def generate_ablation():
    technology = soi_low_vt()
    inverter = standard_cells()["INV"]
    analyzer = MonteCarloAnalyzer(
        technology, vt_sigma=0.03, n_samples=300, seed=3
    )
    spread = analyzer.delay_spread_vs_vdd(inverter, SUPPLIES)

    nominal = CellCharacterizer(technology)
    target = nominal.propagation_delay(inverter, 0.6, 10e-15)
    nominal_vdd = 0.6
    guarded_vdd = analyzer.timing_yield_vdd(
        inverter, target, percentile=99.0
    )

    amplification = {
        sigma: (
            MonteCarloAnalyzer(
                technology, vt_sigma=sigma, n_samples=300, seed=4
            ).leakage_amplification(inverter, 1.0),
            lognormal_leakage_amplification(
                sigma, technology.transistors.nmos.subthreshold_swing
            ),
        )
        for sigma in SIGMAS
    }
    return spread, (nominal_vdd, guarded_vdd), amplification


def test_ablation_variation(benchmark, record):
    spread, (nominal_vdd, guarded_vdd), amplification = benchmark(
        generate_ablation
    )

    # Delay CV grows monotonically as the supply falls.
    cvs = [cv for _, cv in spread]
    assert cvs == sorted(cvs)
    assert cvs[-1] > 3.0 * cvs[0]

    # Variation demands a real guard-band over the nominal solve.
    assert guarded_vdd > nominal_vdd * 1.02

    # Measured leakage amplification tracks the lognormal closed form
    # and grows with sigma.
    measured = [amplification[s][0] for s in SIGMAS]
    assert measured == sorted(measured)
    for sigma in SIGMAS:
        got, predicted = amplification[sigma]
        assert abs(got - predicted) / predicted < 0.35, sigma

    record(
        "ablation_variation",
        format_table(
            ["V_DD [V]", "delay CV (sigma_VT = 30 mV)"],
            [[vdd, cv] for vdd, cv in spread],
            title="Ablation: delay variability vs supply",
        )
        + "\n\n"
        + format_table(
            ["sigma_VT [V]", "mean-leak amplification (MC)",
             "lognormal closed form"],
            [[s, amplification[s][0], amplification[s][1]] for s in SIGMAS],
            title="Mean leakage vs nominal corner",
        )
        + (
            f"\n\nTiming guard-band: nominal V_DD {nominal_vdd} V -> "
            f"{guarded_vdd:.3f} V for 99th-percentile timing."
        ),
    )
