"""Ablation — architecture-driven voltage scaling (ripple vs select).

The paper's introduction cites "an architectural voltage scaling
strategy which trades silicon area for lower power" [ref 1]: a faster
(bigger) architecture meets the same throughput at a lower supply,
and the quadratic V_DD win beats the linear capacitance loss.  This
bench replays that trade with the two adder architectures in the
library: at iso-throughput the carry-select adder runs at a lower
V_DD than the ripple-carry adder and (despite ~2x the gates) burns
comparable or less switching energy.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import carry_select_adder, ripple_carry_adder
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

WIDTH = 16
VECTORS = 120


def _solve_vdd_for_delay(analyzer, netlist, target_s, bounds=(0.2, 2.0)):
    """Supply at which the netlist's critical path hits the target."""
    low, high = bounds
    if analyzer.analyze(netlist, high).delay_s > target_s:
        raise OptimizationError("target unreachable at max V_DD")
    for _ in range(50):
        mid = 0.5 * (low + high)
        if analyzer.analyze(netlist, mid).delay_s > target_s:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def generate_ablation():
    technology = soi_low_vt()
    analyzer = StaticTimingAnalyzer(technology)
    ripple = ripple_carry_adder(WIDTH)
    select = carry_select_adder(WIDTH, block_width=4)

    # Throughput target: what the ripple adder achieves at 1 V.
    target = analyzer.analyze(ripple, 1.0).delay_s

    vdd_ripple = 1.0
    vdd_select = _solve_vdd_for_delay(analyzer, select, target)

    rows = {}
    for name, netlist, vdd in (
        ("ripple", ripple, vdd_ripple),
        ("carry-select", select, vdd_select),
    ):
        stimulus = random_bus_vectors(
            {"a": WIDTH, "b": WIDTH}, VECTORS, seed=42
        )
        report = SwitchLevelSimulator(
            netlist, technology, vdd
        ).run_vectors(stimulus)
        energy = report.switching_energy_per_cycle(
            netlist, technology, vdd
        )
        rows[name] = {
            "gates": len(netlist.instances),
            "vdd": vdd,
            "delay": analyzer.analyze(netlist, vdd).delay_s,
            "energy": energy,
        }
    return target, rows


def test_ablation_adder_architecture(benchmark, record):
    target, rows = benchmark(generate_ablation)
    ripple, select = rows["ripple"], rows["carry-select"]

    # The select adder uses more area...
    assert select["gates"] > 1.3 * ripple["gates"]
    # ...but meets the same delay at a meaningfully lower supply...
    assert select["vdd"] < 0.9 * ripple["vdd"]
    assert select["delay"] <= target * 1.01
    # ...and the quadratic supply win holds the energy at or below the
    # ripple design despite the extra capacitance.
    assert select["energy"] < 1.15 * ripple["energy"]

    record(
        "ablation_adder_architecture",
        format_table(
            ["architecture", "gates", "V_DD [V]", "delay [s]",
             "E_sw/op [J]"],
            [
                [name, r["gates"], r["vdd"], r["delay"], r["energy"]]
                for name, r in rows.items()
            ],
            title=(
                f"Ablation: area-for-voltage trade, {WIDTH}-bit adders "
                f"at iso-throughput ({target:.3e} s)"
            ),
        ),
    )
