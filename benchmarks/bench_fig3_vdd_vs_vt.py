"""Fig. 3 — V_DD vs V_T at fixed ring-oscillator delay.

Paper shape: at constant performance, V_DD falls monotonically as V_T
falls (lower thresholds buy lower supplies); slower delay targets give
uniformly lower V_DD curves.  The paper's three curves are labelled by
per-stage delays; we use three delay classes in the same ratios.
"""

from repro.analysis.tables import format_table
from repro.device.technology import soi_low_vt
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel

VT_SWEEP = [0.05 + 0.05 * i for i in range(8)]  # 0.05 .. 0.40 V


def generate_fig3():
    """V_DD(V_T) for three fixed stage-delay targets."""
    ring = RingOscillatorModel(soi_low_vt(), stages=101)
    optimizer = FixedThroughputOptimizer(ring)
    reference = ring.stage_delay(1.0, 0.2)
    targets = {
        "t_pd x1": reference,
        "t_pd x1.5": 1.5 * reference,
        "t_pd x2": 2.0 * reference,
    }
    loci = {}
    for label, target in targets.items():
        points = optimizer.sweep(VT_SWEEP, target)
        loci[label] = {p.vt: p.vdd for p in points}
    return loci, targets


def test_fig3_vdd_vs_vt(benchmark, record):
    loci, targets = benchmark(generate_fig3)

    # Shape 1: V_DD increases with V_T along every fixed-delay locus.
    for label, locus in loci.items():
        vts = sorted(locus)
        vdds = [locus[vt] for vt in vts]
        assert vdds == sorted(vdds), label
        assert len(vdds) >= 5, label

    # Shape 2: slower targets sit at lower V_DD for every common V_T.
    for vt in VT_SWEEP:
        ordered = [
            loci[label].get(vt)
            for label in ("t_pd x1", "t_pd x1.5", "t_pd x2")
        ]
        present = [v for v in ordered if v is not None]
        assert present == sorted(present, reverse=True)

    # Shape 3: sub-1V operation is reached at low V_T even for the
    # fastest target.
    fast = loci["t_pd x1"]
    assert min(fast.values()) < 1.0

    rows = [
        [vt]
        + [
            loci[label].get(vt)
            for label in ("t_pd x1", "t_pd x1.5", "t_pd x2")
        ]
        for vt in VT_SWEEP
    ]
    record(
        "fig3_vdd_vs_vt",
        format_table(
            ["V_T [V]", "V_DD@x1 [V]", "V_DD@x1.5 [V]", "V_DD@x2 [V]"],
            rows,
            title=(
                "Fig. 3: V_DD vs V_T at fixed delay (101-stage ring, "
                f"base stage delay {targets['t_pd x1']:.3e} s)"
            ),
        ),
    )
