"""Fig. 6 — measured I-V of the SOIAS NMOS at two back-gate biases.

Paper numbers: V_T = 0.448 V at V_gb = 0 vs V_T = 0.184 V at 3 V of
forward back-gate drive; ~4 decades of off-current separation and a
~1.8x on-current increase at 1 V operation.
"""

import math

from repro.analysis.tables import format_table
from repro.device.mosfet import Mosfet
from repro.device.technology import soias_technology

VGF_SWEEP = [0.05 * i for i in range(31)]  # 0 .. 1.5 V
VDS = 1.0


def generate_fig6():
    """Front-gate I-V per um at standby and full-drive back bias."""
    technology = soias_technology()
    back_gate = technology.back_gate
    device = Mosfet(technology.transistors.nmos, width_um=1.0)
    shifts = {
        "V_gb=0V": 0.0,
        "V_gb=3V": back_gate.vt_shift_at(3.0),
    }
    curves = {
        label: device.iv_curve(VGF_SWEEP, VDS, vt_shift=shift)
        for label, shift in shifts.items()
    }
    thresholds = {
        "V_gb=0V": back_gate.vt_at(0.0),
        "V_gb=3V": back_gate.vt_at(3.0),
    }
    return curves, thresholds


def test_fig6_soias_iv(benchmark, record):
    curves, thresholds = benchmark(generate_fig6)
    standby, active = curves["V_gb=0V"], curves["V_gb=3V"]

    # Shape 1: thresholds match the paper's measured pair.
    assert abs(thresholds["V_gb=0V"] - 0.448) < 1e-9
    assert abs(thresholds["V_gb=3V"] - 0.184) < 1e-9

    # Shape 2: ~4 decades of off-current separation at V_gf = 0.
    off_gap = math.log10(active[0] / standby[0])
    assert 3.2 < off_gap < 4.8, off_gap

    # Shape 3: ~1.8x on-current increase at 1 V operation.
    index_1v = VGF_SWEEP.index(1.0)
    on_ratio = active[index_1v] / standby[index_1v]
    assert 1.4 < on_ratio < 2.2, on_ratio

    # Shape 4: forward back-gate drive increases the current at every
    # front-gate bias.
    assert all(a >= s for a, s in zip(active, standby))

    rows = [
        [vgf, standby[i], active[i]] for i, vgf in enumerate(VGF_SWEEP)
    ]
    record(
        "fig6_soias_iv",
        format_table(
            ["V_gf [V]", "I_D V_gb=0V [A/um]", "I_D V_gb=3V [A/um]"],
            rows,
            title=(
                "Fig. 6: SOIAS NMOS I-V, V_ds = 1 V "
                f"(off gap {off_gap:.2f} decades, on ratio "
                f"{on_ratio:.2f}x at 1 V)"
            ),
        ),
    )
