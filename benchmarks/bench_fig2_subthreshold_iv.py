"""Fig. 2 — subthreshold I_D vs V_gs for V_T = 0.25 V and 0.40 V.

Paper shape: straight lines on a log-current axis below threshold with
a 60-90 mV/decade slope, and a multi-decade off-current gap between
the two thresholds at V_gs = 0 (150 mV / 66 mV/dec ~ 2.3 decades; the
figure's "<1 pA vs 0.1 uA" annotation is not self-consistent with any
physical swing, so the slope-based gap is the criterion).
"""

import math

from repro.analysis.tables import format_table
from repro.device.mosfet import Mosfet
from repro.device.technology import soi_low_vt

VGS_SWEEP = [0.05 * i for i in range(21)]  # 0 .. 1.0 V
VDS = 1.0
THRESHOLDS = (0.25, 0.40)


def generate_fig2():
    """I_D(V_gs) per threshold for a 10 um SOI NMOS."""
    curves = {}
    devices = {}
    for vt in THRESHOLDS:
        technology = soi_low_vt(vt0=vt)
        device = Mosfet(technology.transistors.nmos, width_um=10.0)
        devices[vt] = device
        curves[vt] = device.iv_curve(VGS_SWEEP, VDS)
    return curves, devices


def test_fig2_subthreshold_iv(benchmark, record):
    curves, devices = benchmark(generate_fig2)

    low, high = curves[0.25], curves[0.40]

    # Shape 1: both curves strictly increasing in V_gs.
    assert low == sorted(low)
    assert high == sorted(high)

    # Shape 2: subthreshold slope within the paper's 60-90 mV/dec band.
    for vt, device in devices.items():
        slope = device.subthreshold_slope_mv_per_decade(vds=VDS)
        assert 60.0 <= slope <= 90.0, (vt, slope)

    # Shape 3: off-current gap at V_gs = 0 equals the V_T difference
    # over the swing (~2.3 decades for 150 mV at 66 mV/dec).
    gap_decades = math.log10(low[0] / high[0])
    assert 1.8 < gap_decades < 2.8, gap_decades

    # Shape 4: high-V_T device is the quieter one everywhere below V_T.
    assert all(h < l for h, l in zip(high[:8], low[:8]))

    rows = [
        [vgs, low[i], high[i]] for i, vgs in enumerate(VGS_SWEEP)
    ]
    record(
        "fig2_subthreshold_iv",
        format_table(
            ["V_gs [V]", "I_D (V_T=0.25V) [A]", "I_D (V_T=0.40V) [A]"],
            rows,
            title=(
                "Fig. 2: subthreshold conduction, 10um NMOS, V_ds = 1 V "
                f"(off-current gap {gap_decades:.2f} decades)"
            ),
        ),
    )
