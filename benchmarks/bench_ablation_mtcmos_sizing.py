"""Ablation — MTCMOS sleep-transistor sizing.

Section 4 of the paper introduces multiple-threshold gating "assuming
proper device sizing".  This bench makes the sizing trade explicit on
an 8-bit adder: sleep width vs virtual-rail droop, delay penalty,
standby leakage and area overhead — and solves widths for three delay
budgets.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import mtcmos_technology
from repro.power.mtcmos import SleepTransistorSizer, estimate_peak_current

WIDTHS_UM = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0)
BUDGETS = (0.02, 0.05, 0.10)


def generate_ablation():
    technology = mtcmos_technology()
    adder = ripple_carry_adder(8)
    peak = estimate_peak_current(adder, technology, vdd=1.0)
    logic_width = sum(
        instance.cell.nmos_count * instance.cell.input_nmos_width_um
        + instance.cell.pmos_count * instance.cell.input_pmos_width_um
        for instance in adder.instances.values()
    )
    sizer = SleepTransistorSizer(
        technology, peak, vdd=1.0, logic_width_um=logic_width
    )
    sweep = [sizer.solution(w) for w in WIDTHS_UM]
    sized = {budget: sizer.size_for_penalty(budget) for budget in BUDGETS}
    logic_leakage = technology.nmos(logic_width).off_current(1.0)
    return sweep, sized, logic_leakage


def test_ablation_mtcmos_sizing(benchmark, record):
    sweep, sized, logic_leakage = benchmark(generate_ablation)

    # Wider devices: less droop/penalty, more leakage and area.
    penalties = [s.delay_penalty for s in sweep]
    leakages = [s.standby_leakage_a for s in sweep]
    assert penalties == sorted(penalties, reverse=True)
    assert leakages == sorted(leakages)

    # Every sized solution meets its budget and the tightest budget
    # needs the widest device.
    for budget, solution in sized.items():
        assert solution.delay_penalty <= budget * 1.001
    widths = [sized[b].sleep_width_um for b in sorted(sized)]
    assert widths == sorted(widths, reverse=True)

    # The scheme is worth having: even the widest sleep device leaks
    # orders of magnitude less than the ungated low-V_T logic.
    assert sweep[-1].standby_leakage_a < logic_leakage / 30.0

    record(
        "ablation_mtcmos_sizing",
        format_table(
            [
                "W_sleep [um]",
                "droop [V]",
                "delay penalty",
                "standby leak [A]",
                "area overhead",
            ],
            [
                [
                    s.sleep_width_um,
                    s.virtual_rail_droop_v,
                    s.delay_penalty,
                    s.standby_leakage_a,
                    s.area_overhead_fraction,
                ]
                for s in sweep
            ],
            title=(
                "Ablation: MTCMOS sleep-device sizing, 8-bit adder "
                f"(ungated logic leakage {logic_leakage:.3e} A)"
            ),
        )
        + "\n\n"
        + format_table(
            ["penalty budget", "W_sleep [um]", "standby leak [A]"],
            [
                [budget, sized[budget].sleep_width_um,
                 sized[budget].standby_leakage_a]
                for budget in BUDGETS
            ],
            title="Sized for delay budgets",
        ),
    )
