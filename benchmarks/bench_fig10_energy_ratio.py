"""Fig. 10 — log10(E_SOIAS/E_SOI) over (fga, bga) with application points.

Paper shape:

* a break-even (zero) contour divides the plane; points below it save
  energy with SOIAS;
* continuously-active processor points (clock-gated modules, duty 1.0)
  sit near or above break-even — "little advantage";
* X-server points (duty 0.2) sit clearly below, with savings ordered
  multiplier > shifter > adder (paper: 97 %, 81 %, 43 %).
"""

import functools

from repro.analysis.tables import format_table
from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import standard_datapath
from repro.isa.profiler import profile_program
from repro.isa.workloads import espresso_like, idea, li_like

FGA_GRID = [10.0**e for e in (-4, -3, -2, -1, 0)]
BGA_GRID = [10.0**e for e in (-5, -4, -3, -2, -1)]
UNITS = ("adder", "shifter", "multiplier")


def generate_fig10():
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    datapath = standard_datapath(width=8, stimulus_vectors=100)

    # A mixed interactive session: the three paper workloads back to
    # back (espresso + li + IDEA), then duty-cycle scaling.
    session = functools.reduce(
        lambda a, b: a.merged_with(b),
        [
            profile_program(espresso_like.build_program(48, 10)),
            profile_program(li_like.build_program(64, 40)),
            profile_program(idea.build_program(idea.random_blocks(8))),
        ],
    )

    modules = {}
    for name, unit in datapath.items():
        report = flow.unit_activity(unit.netlist, unit.vectors)
        modules[name] = flow.module_parameters(unit.netlist, report)

    # The surface/contour uses the adder module (the paper plots one
    # representative surface; application points carry their own
    # module parameters through the comparator).
    surface = flow.ratio_surface(modules["adder"], FGA_GRID, BGA_GRID)
    contour = surface.breakeven_contour(FGA_GRID)

    points = {}
    for duty, scenario in ((1.0, "continuous"), (0.2, "x-server")):
        scaled = session.scaled_by_duty_cycle(duty)
        for name in UNITS:
            fga, bga = scaled.fga(name), scaled.bga(name)
            verdict = flow.comparator(modules[name]).verdict(
                "soias", fga, bga
            )
            points[(scenario, name)] = verdict
    return surface, contour, points


def test_fig10_energy_ratio(benchmark, record):
    surface, contour, points = benchmark(generate_fig10)

    xserver = {
        name: points[("x-server", name)] for name in UNITS
    }
    continuous = {
        name: points[("continuous", name)] for name in UNITS
    }

    # Shape 1: X-server savings ordered multiplier > shifter > adder.
    assert (
        xserver["multiplier"].saving_percent
        > xserver["shifter"].saving_percent
        > xserver["adder"].saving_percent
    )

    # Shape 2: magnitudes in the paper's band (97 / 81 / 43 %).
    assert xserver["multiplier"].saving_percent > 90.0
    assert xserver["shifter"].saving_percent > 60.0
    assert 20.0 < xserver["adder"].saving_percent < 95.0

    # Shape 3: every X-server point beats its continuous counterpart;
    # the busiest continuous unit sits near break-even.
    for name in UNITS:
        assert (
            xserver[name].saving_percent > continuous[name].saving_percent
        )
    assert abs(continuous["adder"].saving_percent) < 25.0

    # Shape 4: a break-even contour exists within the admissible plane.
    assert any(b is not None for b in contour)

    # Shape 5: surface increases with bga at fixed fga.
    for i, fga in enumerate(FGA_GRID):
        row = [
            surface.grid.at(i, j)
            for j in range(len(BGA_GRID))
            if surface.grid.at(i, j) is not None
        ]
        assert row == sorted(row)

    point_rows = [
        [
            scenario,
            name,
            v.fga,
            v.bga,
            v.saving_percent,
            v.wins,
        ]
        for (scenario, name), v in sorted(points.items())
    ]
    contour_rows = [
        [fga, contour[i]] for i, fga in enumerate(FGA_GRID)
    ]
    surface_rows = []
    for i, fga in enumerate(FGA_GRID):
        surface_rows.append(
            [fga]
            + [surface.grid.at(i, j) for j in range(len(BGA_GRID))]
        )
    record(
        "fig10_energy_ratio",
        format_table(
            ["fga \\ bga"] + [f"{b:g}" for b in BGA_GRID],
            surface_rows,
            title=(
                "Fig. 10: log10(E_SOIAS/E_SOI) surface (adder module, "
                "1 MHz, V_DD = 1 V); '-' marks bga > fga"
            ),
        )
        + "\n\n"
        + format_table(
            ["fga", "break-even bga"],
            contour_rows,
            title="Fig. 10 break-even contour (None = SOIAS always wins)",
        )
        + "\n\n"
        + format_table(
            ["scenario", "unit", "fga", "bga", "saving %", "SOIAS wins"],
            point_rows,
            title=(
                "Fig. 10 application points (paper: X-server saves "
                "43% adder / 81% shifter / 97% multiplier)"
            ),
        ),
    )
