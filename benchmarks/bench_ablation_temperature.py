"""Ablation — temperature dependence of leakage and the optimum V_T.

Subthreshold swing scales with absolute temperature (S = n kT/q ln10),
so a portable device that runs warm leaks exponentially more at the
same V_T — pushing the Fig. 4 optimum threshold upward.  The paper's
room-temperature numbers are one point on this axis.
"""

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.device.mosfet import Mosfet
from repro.device.technology import soi_low_vt
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel

TEMPERATURES_K = (250.0, 300.0, 350.0, 400.0)


def _technology_at(temperature_k: float):
    base = soi_low_vt()
    pair = base.transistors
    return replace(
        base,
        transistors=replace(
            pair,
            nmos=pair.nmos.with_temperature(temperature_k),
            pmos=pair.pmos.with_temperature(temperature_k),
        ),
    )


def generate_ablation():
    rows = []
    optima = {}
    for temperature in TEMPERATURES_K:
        technology = _technology_at(temperature)
        device = Mosfet(technology.transistors.nmos)
        off = device.off_current(1.0)
        swing = technology.transistors.nmos.subthreshold_swing
        ring = RingOscillatorModel(technology, stages=51)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=102)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        best = optimizer.optimum(target, vt_bounds=(0.03, 0.45))
        rows.append(
            [temperature, swing * 1e3, off, best.vt, best.vdd,
             best.energy_per_cycle_j, best.leakage_fraction]
        )
        optima[temperature] = best
    return rows, optima


def test_ablation_temperature(benchmark, record):
    rows, optima = benchmark(generate_ablation)

    # Swing grows linearly with T.
    swings = [row[1] for row in rows]
    assert swings == sorted(swings)

    # Off current grows monotonically (and strongly) with T.
    offs = [row[2] for row in rows]
    assert offs == sorted(offs)
    assert offs[-1] > 5.0 * offs[0]

    # Up to ~350 K the optimum threshold moves up as leakage worsens;
    # at 400 K the design enters a leakage-dominated regime (leakage
    # fraction > 0.9) where the optimum collapses toward subthreshold
    # operation — both regimes are reported.
    moderate_vts = [row[3] for row in rows if row[0] <= 350.0]
    assert moderate_vts == sorted(moderate_vts)
    hottest = rows[-1]
    assert hottest[6] > 0.8  # leakage-dominated at 400 K

    # The achievable optimum energy only degrades with temperature.
    energies = [row[5] for row in rows]
    assert energies == sorted(energies)

    record(
        "ablation_temperature",
        format_table(
            ["T [K]", "S_th [mV/dec]", "I_off@1V [A/um]",
             "optimal V_T [V]", "optimal V_DD [V]", "E* [J]",
             "leak frac"],
            rows,
            title=(
                "Ablation: temperature vs leakage and the fixed-"
                "throughput optimum (51-stage ring)"
            ),
        ),
    )
