"""Fig. 8 — transition-activity histogram, 8-bit adder, random inputs.

Paper shape: with uniform random operands the node transition
probabilities spread broadly around ~0.5, with a glitch tail above 1.0
on the high-order sum nodes of the ripple chain.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

VECTORS = 500
BINS = 12


def generate_fig8():
    adder = ripple_carry_adder(8)
    simulator = SwitchLevelSimulator(adder, soi_low_vt(), vdd=1.0)
    stimulus = random_bus_vectors({"a": 8, "b": 8}, VECTORS, seed=1996)
    report = simulator.run_vectors(stimulus)
    edges, counts = report.histogram(bins=BINS)
    return report, edges, counts


def test_fig8_activity_random(benchmark, record):
    report, edges, counts = benchmark(generate_fig8)

    # Shape 1: substantial mean activity under random stimulus.
    mean = report.mean_activity()
    assert mean > 0.4, mean

    # Shape 2: a glitch tail exists (nodes with probability > 1.0,
    # i.e. more than one transition per applied vector on average).
    glitchy = [
        net
        for net in report.internal_nets()
        if report.transition_probability(net) > 1.0
    ]
    assert glitchy, "expected glitching sum nodes"

    # Shape 3: the histogram is spread out, not spiked in one bin.
    assert max(counts) < 0.6 * sum(counts)

    rows = [
        [f"{edges[i]:.3f}-{edges[i + 1]:.3f}", counts[i]]
        for i in range(BINS)
    ]
    record(
        "fig8_activity_random",
        format_table(
            ["transition probability", "number of nodes"],
            rows,
            title=(
                "Fig. 8: activity histogram, 8-bit ripple adder, "
                f"{VECTORS} random vectors (mean activity {mean:.3f}, "
                f"{len(glitchy)} glitchy nodes)"
            ),
        ),
    )
