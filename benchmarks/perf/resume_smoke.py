"""Resume-after-kill smoke test for the persistent result store.

Exercises the store's central durability claim end to end, against the
real Fig. 10 surface path rather than a toy function:

1. Compute a cold serial reference surface (no store).
2. Spawn a child process that computes the same surface into a disk
   store with per-cell checkpointing, and **SIGKILLs itself** partway
   through the grid — no cleanup, no atexit, the hard-crash case.
3. Resume the surface in this process from the same store and assert
   (a) at least half the grid came back from the store (via the
   ``store.sweep_cells_restored`` obs counter) and (b) the resumed
   surface is bit-identical to the cold reference.
4. Finish with ``repro cache gc`` over the store, asserting the CLI
   path drains it.

Exits non-zero (with a message) on any violated assertion, so CI can
run it directly::

    PYTHONPATH=src python benchmarks/perf/resume_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import textwrap

from repro import obs
from repro.analysis.contour import energy_ratio_surface
from repro.cli import main as repro_main
from repro.power.energy import ModuleEnergyParameters
from repro.store import ResultStore

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

GRID_N = 8
VDD = 1.0
T_CYCLE_S = 1e-6

# The child kills itself once this fraction of the grid has completed
# (and, at checkpoint_every=1, has been durably flushed).
KILL_FRACTION = 0.6

CHILD_SCRIPT = textwrap.dedent(
    """
    import os, signal
    from repro.analysis.contour import energy_ratio_surface
    from repro.power.energy import ModuleEnergyParameters
    from repro.store import ResultStore

    module = ModuleEnergyParameters(
        name="smoke-adder",
        switched_capacitance_f=45e-12,
        leakage_low_vt_a=2.0e-6,
        leakage_high_vt_a=4.0e-9,
        back_gate_capacitance_f=18e-12,
        back_gate_swing_v=2.0,
    )
    grid = [i / {n} for i in range(1, {n} + 1)]

    def die_partway(done, total):
        if done >= int(total * {kill_fraction}):
            os.kill(os.getpid(), signal.SIGKILL)

    energy_ratio_surface(
        module, {vdd}, {t_cycle}, grid, grid,
        progress=die_partway,
        store=ResultStore.at({root!r}),
        checkpoint_every=1,
    )
    raise SystemExit("child was supposed to die mid-grid")
    """
)


def _module() -> ModuleEnergyParameters:
    return ModuleEnergyParameters(
        name="smoke-adder",
        switched_capacitance_f=45e-12,
        leakage_low_vt_a=2.0e-6,
        leakage_high_vt_a=4.0e-9,
        back_gate_capacitance_f=18e-12,
        back_gate_swing_v=2.0,
    )


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"resume smoke FAILED: {message}")


def run_smoke() -> None:
    grid = [i / GRID_N for i in range(1, GRID_N + 1)]
    total_cells = GRID_N * GRID_N
    reference = energy_ratio_surface(_module(), VDD, T_CYCLE_S, grid, grid)

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        store_root = os.path.join(tmp, "cache")
        script = CHILD_SCRIPT.format(
            n=GRID_N, vdd=VDD, t_cycle=T_CYCLE_S,
            kill_fraction=KILL_FRACTION, root=store_root,
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        child = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, timeout=600,
        )
        _check(
            child.returncode == -signal.SIGKILL,
            f"child exited {child.returncode}, expected SIGKILL "
            f"({child.stderr.decode(errors='replace')[-500:]})",
        )

        obs.reset()
        obs.enable()
        try:
            resumed = energy_ratio_surface(
                _module(), VDD, T_CYCLE_S, grid, grid,
                store=ResultStore.at(store_root),
            )
            restored = obs.counter_value("store.sweep_cells_restored")
        finally:
            obs.disable()

        _check(
            restored >= total_cells // 2,
            f"only {restored}/{total_cells} cells restored from the "
            f"store after the kill (need >= {total_cells // 2})",
        )
        _check(
            resumed.grid.zs == reference.grid.zs,
            "resumed surface differs from the cold serial reference",
        )
        print(
            f"resume smoke OK: child SIGKILLed mid-grid, resume "
            f"restored {restored}/{total_cells} cells, surface "
            f"bit-identical to the cold run"
        )

        code = repro_main(
            ["cache", "gc", "--store", store_root, "--max-mb", "0"]
        )
        _check(code == 0, f"repro cache gc exited {code}")
        _check(
            ResultStore.at(store_root).stats()["backend_entries"] == 0,
            "cache gc left entries behind",
        )
        print("cache gc OK: store drained")


if __name__ == "__main__":
    run_smoke()
