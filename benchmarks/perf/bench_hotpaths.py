"""Hot-path performance benchmark for the repro toolkit.

Times the three paths the performance layer optimizes and writes the
measurements to ``BENCH_hotpaths.json`` at the repo root:

1. **Switch-level simulation** — the reference event loop
   (``run_vectors``) vs the table-driven fast path
   (``run_vectors_fast``) on a ripple-carry adder under identical
   random stimulus.  The fast path must produce a bit-identical
   :class:`ActivityReport`.
2. **Fixed-throughput optimizer V_T sweep** (Figs. 3-4) — the seed's
   behavior (a fresh, uncached :class:`CellCharacterizer` per corner
   query) vs the corner-cached ring model, measured both cold (first
   sweep, memo empty) and steady-state (repeated sweeps on one model,
   the production-service workload).  Operating points must match
   exactly.
3. **Grid fan-out** — the Fig. 10 energy-ratio surface and a
   Monte-Carlo leakage distribution, serial vs ``workers=2``.  The
   parallel results must equal the serial results cell for cell; the
   measured ratio is recorded honestly together with ``os.cpu_count()``
   (on a single-CPU host process fan-out *loses* to serial — the
   point of the record is scaling on real multi-core machines).
4. **ISA interpreter** — the reference per-step loop (``run``) vs the
   pre-decoded closure-dispatch engine (``run_fast``) on the Table-2
   li-like workload.  Architectural state must be bit-identical.
5. **ATOM profiler** — the hook-instrumented reference profile vs the
   counter-based decoded profile (``run_counted`` +
   ``profile_from_counts``) on the same workload.  Profiles must be
   identical; the acceptance target is a >=5x speedup.
6. **Batched variation engine** — the per-sample Monte-Carlo path (one
   full ``propagation_delay``/``leakage_current`` call chain per V_T
   sample) vs the decoded :class:`VariationPlan` batch path on the
   same shift vector.  Samples must be bit-identical; the acceptance
   target is a >=5x speedup.
7. **Adaptive contour refinement** — a uniform grid at the finest
   refinement resolution vs the adaptive surface that subdivides only
   the cells near the break-even contour.  Every point the adaptive
   surface evaluates must be bit-identical to the uniform grid, the
   resolved contour cells must match exactly, and the adaptive pass
   must evaluate at most half the uniform grid's points.
8. **Distributed scheduler** — the Fig. 10 contour workload drained
   through the durable ``repro.sched`` queue by 1 and 2 local worker
   subprocesses vs the plain serial loop.  Assembled surfaces must be
   digest-identical to serial; the 2-worker/1-worker scaling ratio is
   recorded honestly alongside ``os.cpu_count()``.
9. **Batched (V_DD, V_T) energy surface** — the per-point chain (one
   ``fanout_delay``/``energy_per_transition``/``leakage_current`` call
   stack per grid cell, one cached characterizer per V_T corner) vs
   the plan-based Fig. 3/4 ``energy_surface`` whose rows run through
   decoded operating plans.  Grids must be bit-identical; the
   acceptance target is a >=3x speedup.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpaths.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro import obs
from repro.analysis.contour import energy_ratio_surface, zero_crossing_cells
from repro.isa.instructions import FUNCTIONAL_UNITS
from repro.isa.machine import Machine
from repro.isa.profiler import profile_program
from repro.isa.workloads import build as build_workload
from repro.analysis.variation import MonteCarloAnalyzer
from repro.circuits.builders import ripple_carry_adder
from repro.core.flow import LowVoltageDesignFlow
from repro.device.technology import soi_low_vt, soias_technology
from repro.power.energy import ModuleEnergyParameters
from repro.power.optimizer import (
    FixedThroughputOptimizer,
    RingOscillatorModel,
    VariationSpec,
)
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

VT_SWEEP = [0.04 + 0.02 * i for i in range(20)]  # 0.04 .. 0.42 V


def _timed(fn):
    """(result, elapsed_seconds) of one call."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# 1. Simulator: reference event loop vs fast path
# ----------------------------------------------------------------------
def bench_simulator(quick: bool) -> dict:
    width = 8
    count = 60 if quick else 400
    netlist = ripple_carry_adder(width)
    vectors = random_bus_vectors(
        {"a": width, "b": width}, count=count, seed=42
    )
    technology = soi_low_vt()

    reference = SwitchLevelSimulator(netlist, technology, vdd=1.0)
    fast = SwitchLevelSimulator(netlist, technology, vdd=1.0)

    ref_report, ref_seconds = _timed(lambda: reference.run_vectors(vectors))
    fast_report, fast_seconds = _timed(
        lambda: fast.run_vectors_fast(vectors)
    )
    identical = ref_report == fast_report
    return {
        "circuit": netlist.name,
        "vectors": count,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "reference_vectors_per_s": count / ref_seconds,
        "fast_vectors_per_s": count / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "reports_identical": identical,
    }


# ----------------------------------------------------------------------
# 2. Optimizer sweep: uncached-per-corner (seed) vs corner-cached
# ----------------------------------------------------------------------
def _seed_behavior(ring: RingOscillatorModel) -> RingOscillatorModel:
    """Make ``ring`` characterize like the seed: a fresh uncached
    characterizer for every corner query, no sharing across the sweep."""
    ring._corner = lambda vt: CellCharacterizer(  # type: ignore[method-assign]
        ring.technology.with_vt(vt), cache=False
    )
    return ring


def bench_optimizer(quick: bool) -> dict:
    repetitions = 2 if quick else 5
    vts = VT_SWEEP[::4] if quick else VT_SWEEP
    technology = soi_low_vt()

    def sweep_with(ring: RingOscillatorModel):
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=202)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        return optimizer.sweep(vts, target)

    # Before: the seed's behavior, re-timed for every repetition (it
    # has no state to reuse, so each repetition costs the same).
    uncached_rep_seconds = []
    uncached_points = None
    for _ in range(repetitions):
        ring = _seed_behavior(RingOscillatorModel(technology, stages=101))
        uncached_points, elapsed = _timed(lambda: sweep_with(ring))
        uncached_rep_seconds.append(elapsed)

    # After: one corner-cached model serving every repetition — the
    # first sweep pays to fill the memo, the rest hit it.
    cached_ring = RingOscillatorModel(technology, stages=101)
    cached_rep_seconds = []
    cached_points = None
    for _ in range(repetitions):
        cached_points, elapsed = _timed(lambda: sweep_with(cached_ring))
        cached_rep_seconds.append(elapsed)

    identical = [
        (p.vt, p.vdd, p.energy_per_cycle_j) for p in uncached_points
    ] == [(p.vt, p.vdd, p.energy_per_cycle_j) for p in cached_points]

    uncached_total = sum(uncached_rep_seconds)
    cached_total = sum(cached_rep_seconds)
    return {
        "vt_points": len(vts),
        "repetitions": repetitions,
        "uncached_seconds_per_sweep": uncached_rep_seconds,
        "cached_seconds_per_sweep": cached_rep_seconds,
        "uncached_seconds_total": uncached_total,
        "cached_seconds_total": cached_total,
        "cold_speedup": uncached_rep_seconds[0] / cached_rep_seconds[0],
        "warm_speedup": min(uncached_rep_seconds) / min(cached_rep_seconds),
        "speedup": uncached_total / cached_total,
        "points_identical": identical,
    }


# ----------------------------------------------------------------------
# 3. Grid fan-out: contour surface and Monte-Carlo, serial vs workers
# ----------------------------------------------------------------------
def _bench_grid_module() -> ModuleEnergyParameters:
    """A representative datapath module (Fig. 10 operating regime)."""
    return ModuleEnergyParameters(
        name="bench-adder",
        switched_capacitance_f=45e-12,
        leakage_low_vt_a=2.0e-6,
        leakage_high_vt_a=4.0e-9,
        back_gate_capacitance_f=18e-12,
        back_gate_swing_v=2.0,
    )


def bench_contour(quick: bool, workers: int) -> dict:
    from repro.analysis.parallel import _MIN_PARALLEL_ITEMS

    n = 24 if quick else 64
    grid = [i / n for i in range(1, n + 1)]
    module = _bench_grid_module()

    # Warm the characterizer memos before timing either strategy:
    # whichever call runs second in this process hits warm memos and
    # would otherwise be credited with a fictitious cache speedup.
    energy_ratio_surface(module, 1.0, 1e-6, grid, grid)

    serial, serial_seconds = _timed(
        lambda: energy_ratio_surface(module, 1.0, 1e-6, grid, grid)
    )
    parallel, parallel_seconds = _timed(
        lambda: energy_ratio_surface(
            module, 1.0, 1e-6, grid, grid, workers=workers
        )
    )
    return {
        "grid": [n, n],
        "workers": workers,
        # Below the min-items threshold the workers= path deliberately
        # runs serially (the small-grid fan-out regression fix), so the
        # ratio measures fallback overhead, not pool scaling.
        "min_items_fallback": n * n < _MIN_PARALLEL_ITEMS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
        "grids_identical": serial.grid.zs == parallel.grid.zs,
    }


def bench_monte_carlo(quick: bool, workers: int) -> dict:
    n_samples = 40 if quick else 240
    technology = soi_low_vt()
    inverter = standard_cells()["INV"]

    serial_mc = MonteCarloAnalyzer(
        technology, n_samples=n_samples, workers=0
    )
    parallel_mc = MonteCarloAnalyzer(
        technology, n_samples=n_samples, workers=workers
    )
    serial, serial_seconds = _timed(
        lambda: serial_mc.leakage_distribution(inverter, 1.0)
    )
    parallel, parallel_seconds = _timed(
        lambda: parallel_mc.leakage_distribution(inverter, 1.0)
    )
    return {
        "samples": n_samples,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
        "distributions_identical": serial.samples == parallel.samples,
    }


# ----------------------------------------------------------------------
# 4. ISA interpreter: reference stepper vs decoded dispatch engine
# ----------------------------------------------------------------------
_BENCH_WORKLOAD = "li"  # the Table-2 workload named by the target


def _bench_program(quick: bool):
    return build_workload(_BENCH_WORKLOAD, scale=64 if quick else 192)


def bench_interpreter(quick: bool) -> dict:
    reference = Machine(_bench_program(quick))
    retired, ref_seconds = _timed(lambda: reference.run())

    fast = Machine(_bench_program(quick))
    # Decode ahead of the timed run so its one-time cost is reported
    # separately from the steady-state dispatch rate.
    _, decode_seconds = _timed(lambda: fast.decode())
    fast_retired, fast_seconds = _timed(lambda: fast.run_fast())

    identical = (
        fast_retired == retired
        and fast.registers == reference.registers
        and fast.memory == reference.memory
        and fast.pc == reference.pc
        and fast.halted == reference.halted
    )
    return {
        "workload": _BENCH_WORKLOAD,
        "instructions": retired,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "decode_seconds": decode_seconds,
        "reference_instructions_per_s": retired / ref_seconds,
        "fast_instructions_per_s": fast_retired / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "state_identical": identical,
    }


# ----------------------------------------------------------------------
# 5. ATOM profiler: per-instruction hook vs decoded transition counters
# ----------------------------------------------------------------------
def bench_profiler(quick: bool) -> dict:
    ref_profile, ref_seconds = _timed(
        lambda: profile_program(_bench_program(quick), engine="reference")
    )
    fast_profile, fast_seconds = _timed(
        lambda: profile_program(_bench_program(quick), engine="fast")
    )
    identical = (
        fast_profile.total_instructions == ref_profile.total_instructions
        and all(
            fast_profile.stats(u) == ref_profile.stats(u)
            for u in FUNCTIONAL_UNITS
        )
    )
    return {
        "workload": _BENCH_WORKLOAD,
        "instructions": ref_profile.total_instructions,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "reference_instructions_per_s": (
            ref_profile.total_instructions / ref_seconds
        ),
        "fast_instructions_per_s": (
            fast_profile.total_instructions / fast_seconds
        ),
        "speedup": ref_seconds / fast_seconds,
        "profiles_identical": identical,
        "adder_fga": fast_profile.fga("adder"),
        "adder_bga": fast_profile.bga("adder"),
    }


# ----------------------------------------------------------------------
# 6. Batched variation engine: per-sample chain vs decoded plan
# ----------------------------------------------------------------------
def bench_variation(quick: bool) -> dict:
    n_samples = 40 if quick else 240
    vdd = 0.6
    load_f = 10e-15
    technology = soi_low_vt()
    cell = standard_cells()["NAND2"]

    shifts = MonteCarloAnalyzer(
        technology, n_samples=n_samples, seed=0
    ).sample_vt_shifts()

    # Before: the per-sample path — the full characterization call
    # chain (effective-V_T resolve, drive solve, stack bisections) runs
    # once per V_T sample, exactly as the analyzer did pre-plan.
    reference = CellCharacterizer(technology)
    ref_delays, ref_delay_seconds = _timed(
        lambda: [
            reference.propagation_delay(cell, vdd, load_f, vt_shift=s)
            for s in shifts
        ]
    )
    ref_leakages, ref_leakage_seconds = _timed(
        lambda: [
            reference.leakage_current(cell, vdd, vt_shift=s)
            for s in shifts
        ]
    )

    # After: the analyzer decodes the corner into one plan and pushes
    # the whole shift vector through its tight inner loops.
    analyzer = MonteCarloAnalyzer(
        technology, n_samples=n_samples, seed=0, workers=0
    )
    delay_dist, fast_delay_seconds = _timed(
        lambda: analyzer.delay_distribution(cell, vdd, load_f)
    )
    leakage_dist, fast_leakage_seconds = _timed(
        lambda: analyzer.leakage_distribution(cell, vdd)
    )

    identical = (
        tuple(ref_delays) == delay_dist.samples
        and tuple(ref_leakages) == leakage_dist.samples
    )
    ref_total = ref_delay_seconds + ref_leakage_seconds
    fast_total = fast_delay_seconds + fast_leakage_seconds
    return {
        "cell": cell.name,
        "vdd": vdd,
        "samples": n_samples,
        "reference_delay_seconds": ref_delay_seconds,
        "reference_leakage_seconds": ref_leakage_seconds,
        "batched_delay_seconds": fast_delay_seconds,
        "batched_leakage_seconds": fast_leakage_seconds,
        "reference_seconds": ref_total,
        "batched_seconds": fast_total,
        "delay_speedup": ref_delay_seconds / fast_delay_seconds,
        "leakage_speedup": ref_leakage_seconds / fast_leakage_seconds,
        "speedup": ref_total / fast_total,
        "identical": identical,
    }


# ----------------------------------------------------------------------
# 7. Adaptive contour refinement: uniform finest grid vs refined
# ----------------------------------------------------------------------
def bench_contour_refine(quick: bool) -> dict:
    base_n = 8 if quick else 12
    levels = 2 if quick else 3
    band = 0.1
    # At a 10 us cycle the leakage term dominates at low fga, so the
    # break-even contour (bga* ~ 0.28 * (1 - fga)) crosses the grid
    # diagonally with genuinely flat regions on both sides — the
    # workload adaptive refinement is for.
    t_cycle_s = 1e-5
    module = _bench_grid_module()
    grid = [i / base_n for i in range(1, base_n + 1)]

    adaptive, adaptive_seconds = _timed(
        lambda: energy_ratio_surface(
            module, 1.0, t_cycle_s, grid, grid,
            refine_levels=levels, refine_band=band,
        )
    )
    refined = adaptive.refined

    # The honest reference: a uniform grid at the resolution the
    # refinement reaches, evaluated everywhere.
    uniform, uniform_seconds = _timed(
        lambda: energy_ratio_surface(
            module, 1.0, t_cycle_s, refined.xs, refined.ys
        )
    )

    identical = all(
        uniform.grid.zs[i][j] == value
        for (i, j), value in refined.known().items()
    )
    contour_match = refined.zero_cells() == zero_crossing_cells(
        uniform.grid.zs
    )
    return {
        "base_grid": [base_n, base_n],
        "refine_levels": levels,
        "refine_band": band,
        "finest_grid": [len(refined.xs), len(refined.ys)],
        "points_evaluated": refined.evaluated,
        "uniform_points": refined.total_points,
        "coverage": refined.coverage,
        "cells_refined": refined.cells_refined,
        "cells_skipped": refined.cells_skipped,
        "contour_cells": len(refined.zero_cells()),
        "uniform_seconds": uniform_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup": uniform_seconds / adaptive_seconds,
        "identical": identical,
        "contour_match": contour_match,
    }


# ----------------------------------------------------------------------
# 8. Yield-constrained optimum vs the nominal seed path (soias)
# ----------------------------------------------------------------------
def bench_yield_optimum(quick: bool) -> dict:
    """Statistical optimizer cost and the nominal-path identity gate.

    The gate: a flow-built optimizer with no variation spec must
    reproduce the seed-style construction (bare ring + optimizer)
    bit-for-bit on the soias technology.  The statistical optimum is
    then timed and its supply guard band over the nominal solve at the
    same V_T reported.
    """
    technology = soias_technology()
    stages = 11
    samples = 24 if quick else 120
    vt_bounds = (0.05, 0.45)

    seed_ring = RingOscillatorModel(technology, stages=stages)
    seed_optimizer = FixedThroughputOptimizer(
        seed_ring, cycle_stages=2 * stages
    )
    target = 4.0 * seed_ring.stage_delay(1.0, 0.2)
    seed_best, nominal_seconds = _timed(
        lambda: seed_optimizer.optimum(target, vt_bounds=vt_bounds)
    )

    nominal_optimizer = LowVoltageDesignFlow(
        technology=technology
    ).throughput_optimizer(stages=stages)
    nominal_best = nominal_optimizer.optimum(target, vt_bounds=vt_bounds)
    identical = nominal_best == seed_best

    spec = VariationSpec(
        percentile=99.0, vt_sigma=0.03, n_samples=samples, seed=0
    )
    statistical_optimizer = LowVoltageDesignFlow(
        technology=technology, variation=spec
    ).throughput_optimizer(stages=stages)
    stat_best, statistical_seconds = _timed(
        lambda: statistical_optimizer.optimum(target, vt_bounds=vt_bounds)
    )

    # Guard band: how much supply the p99 corner demands over the
    # nominal solve at the V_T the statistical optimum picked.
    nominal_at_stat_vt = seed_optimizer.locus_point(stat_best.vt, target)
    return {
        "technology": "soias",
        "stages": stages,
        "samples": samples,
        "percentile": spec.percentile,
        "vt_sigma": spec.vt_sigma,
        "identical": identical,
        "nominal": {
            "vt": seed_best.vt,
            "vdd": seed_best.vdd,
            "energy_per_cycle_j": seed_best.energy_per_cycle_j,
        },
        "statistical": {
            "vt": stat_best.vt,
            "vdd": stat_best.vdd,
            "energy_per_cycle_j": stat_best.energy_per_cycle_j,
            "delay_percentile_s": stat_best.delay_percentile_s,
            "leakage_amplification": stat_best.leakage_amplification,
            "lognormal_amplification": stat_best.lognormal_amplification,
        },
        "guard_band_v": stat_best.vdd - nominal_at_stat_vt.vdd,
        "energy_cost_ratio": (
            stat_best.energy_per_cycle_j / seed_best.energy_per_cycle_j
        ),
        "nominal_seconds": nominal_seconds,
        "statistical_seconds": statistical_seconds,
    }


# ----------------------------------------------------------------------
# 9. Batched energy surface: per-point chain vs decoded operating plans
# ----------------------------------------------------------------------
def bench_surface(quick: bool) -> dict:
    """The Fig. 3/4 plane: per-point characterization vs plan kernels.

    The reference replicates what the surface does cell by cell with
    the pre-plan call chain — one cached characterizer per V_T corner,
    a full ``fanout_delay`` feasibility probe and (where feasible) the
    ``energy_per_transition``/``leakage_current`` pair per V_DD point,
    associated exactly like ``RingOscillatorModel.energy_per_cycle``.
    The plan path must reproduce it float for float.
    """
    from repro.analysis.surface import energy_surface

    n_vt = 10 if quick else 20
    n_vdd = 16 if quick else 40
    stages = 11
    activity = 1.0
    t_cycle_s = 5e-8  # 20 MHz: part of the plane is infeasible
    cycle_stages = 2 * stages
    target = t_cycle_s / cycle_stages
    technology = soi_low_vt()
    vts = [0.08 + 0.4 * i / (n_vt - 1) for i in range(n_vt)]
    vdds = [0.2 + 1.3 * j / (n_vdd - 1) for j in range(n_vdd)]
    inverter = standard_cells()["INV"]

    def per_point_chain():
        rows = []
        for vt in vts:
            corner = CellCharacterizer(technology.with_vt(vt))
            row = []
            for vdd in vdds:
                if corner.fanout_delay(inverter, vdd, fanout=1) > target:
                    row.append(None)
                    continue
                load = inverter.input_capacitance(corner.technology, vdd)
                switching = stages * activity * corner.energy_per_transition(
                    inverter, vdd, load
                )
                leakage_current = stages * corner.leakage_current(
                    inverter, vdd
                )
                row.append(
                    switching + leakage_current * vdd * t_cycle_s
                )
            rows.append(tuple(row))
        return tuple(rows)

    reference, ref_seconds = _timed(per_point_chain)
    planned, plan_seconds = _timed(
        lambda: energy_surface(
            technology, vts, vdds, t_cycle_s,
            stages=stages, activity=activity, cycle_stages=cycle_stages,
        )
    )
    cells = n_vt * n_vdd
    return {
        "grid": [n_vt, n_vdd],
        "stages": stages,
        "t_cycle_s": t_cycle_s,
        "feasible_cells": planned.grid.defined_cells(),
        "reference_seconds": ref_seconds,
        "planned_seconds": plan_seconds,
        "reference_cells_per_s": cells / ref_seconds,
        "planned_cells_per_s": cells / plan_seconds,
        "speedup": ref_seconds / plan_seconds,
        "identical": planned.grid.zs == reference,
    }


# ----------------------------------------------------------------------
# 10. Distributed scheduler: serial vs durable queue + local workers
# ----------------------------------------------------------------------
def bench_scheduler(quick: bool) -> dict:
    """Contour workload through the ``repro.sched`` queue.

    The same :class:`ContourCellTask` grid is evaluated serially and
    then drained through the durable queue by 1 and by 2 local worker
    subprocesses.  Every assembled surface must be bit-identical (by
    store digest) to the serial one; each run gets a fresh queue
    directory so idempotent-resume caching cannot fake the timing.
    """
    import shutil
    import tempfile

    from repro.sched import Scheduler, scheduled_map_items
    from repro.sched.workloads import (
        ContourCellTask,
        contour_grid,
        contour_pairs,
        demo_module,
    )
    from repro.store.hashing import digest

    # repeat makes each chunk expensive enough that queue latency and
    # worker startup do not drown the evaluation being distributed.
    n = 8 if quick else 14
    repeat = 3000 if quick else 10000
    task = ContourCellTask(demo_module(), 1.0, 1e-6, repeat=repeat)
    pairs = contour_pairs(contour_grid(n))

    serial, serial_seconds = _timed(lambda: [task(pair) for pair in pairs])
    serial_digest = digest(serial)

    worker_runs = {}
    identical = True
    for workers in (1, 2):
        root = tempfile.mkdtemp(prefix=f"repro-sched-bench-{workers}w-")
        try:
            with Scheduler(
                root=root,
                local_workers=workers,
                lease_s=30.0,
                poll_s=0.05,
                timeout_s=300.0,
                rescue_after_s=5.0,
            ) as scheduler:
                scheduled, seconds = _timed(
                    lambda: scheduled_map_items(task, pairs, scheduler)
                )
        finally:
            shutil.rmtree(root, ignore_errors=True)
        identical = identical and digest(scheduled) == serial_digest
        worker_runs[str(workers)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds,
        }

    return {
        "grid": [n, n],
        "repeat": repeat,
        "items": len(pairs),
        "serial_seconds": serial_seconds,
        "worker_runs": worker_runs,
        "scaling_2w_over_1w": (
            worker_runs["1"]["seconds"] / worker_runs["2"]["seconds"]
        ),
        "identical": identical,
    }


# ----------------------------------------------------------------------
# 11. Observability snapshot (instrumented rerun of small workloads)
# ----------------------------------------------------------------------
def bench_observability(workers: int) -> dict:
    """A small instrumented pass recording the hot-path counters.

    Runs *after* the timed benches (which execute with instrumentation
    disabled, the production configuration) so the snapshot documents
    what the counters look like without perturbing the measurements.
    """
    technology = soi_low_vt()
    with obs.enabled_scope():
        ring = RingOscillatorModel(technology, stages=11)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=22)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        optimizer.sweep(VT_SWEEP[::4], target)
        optimizer.optimum(target, vt_bounds=(0.05, 0.45))

        netlist = ripple_carry_adder(4)
        vectors = random_bus_vectors({"a": 4, "b": 4}, count=20, seed=1)
        SwitchLevelSimulator(netlist, technology, vdd=1.0).run_vectors_fast(
            vectors
        )

        module = _bench_grid_module()
        grid = [i / 8 for i in range(1, 9)]
        energy_ratio_surface(
            module, 1.0, 1e-6, grid, grid, workers=workers
        )

        Machine(build_workload(_BENCH_WORKLOAD, scale=16)).run_counted()

        obs.gauge("ring.corners", ring.cache_info().currsize)
        obs.gauge("ring.corner_hit_rate", ring.cache_info().hit_rate)
        return obs.snapshot()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(quick: bool, workers: int) -> dict:
    results = {
        "meta": {
            "generated_unix": time.time(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "quick": quick,
        },
        "simulator": bench_simulator(quick),
        "optimizer_sweep": bench_optimizer(quick),
        "contour_grid": bench_contour(quick, workers),
        "monte_carlo": bench_monte_carlo(quick, workers),
        "interpreter": bench_interpreter(quick),
        "profiler": bench_profiler(quick),
        "variation": bench_variation(quick),
        "contour": bench_contour_refine(quick),
        "yield_optimum": bench_yield_optimum(quick),
        "scheduler": bench_scheduler(quick),
        "surface": bench_surface(quick),
        "observability": bench_observability(workers),
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads for CI smoke runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the grid fan-out benches",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args(argv)

    results = run(args.quick, args.workers)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    sim = results["simulator"]
    opt = results["optimizer_sweep"]
    grid = results["contour_grid"]
    mc = results["monte_carlo"]
    interp = results["interpreter"]
    prof = results["profiler"]
    var = results["variation"]
    contour = results["contour"]
    yld = results["yield_optimum"]
    sched = results["scheduler"]
    surf = results["surface"]
    print(f"wrote {args.out}")
    print(
        f"simulator       {sim['speedup']:6.2f}x  "
        f"({sim['reference_vectors_per_s']:.0f} -> "
        f"{sim['fast_vectors_per_s']:.0f} vectors/s, "
        f"identical={sim['reports_identical']})"
    )
    print(
        f"optimizer sweep {opt['speedup']:6.2f}x amortized over "
        f"{opt['repetitions']} sweeps "
        f"(cold {opt['cold_speedup']:.2f}x, warm {opt['warm_speedup']:.2f}x, "
        f"identical={opt['points_identical']})"
    )
    grid_mode = (
        "small-grid serial fallback"
        if grid["min_items_fallback"]
        else f"on {results['meta']['cpu_count']} CPU(s)"
    )
    print(
        f"contour grid    {grid['parallel_speedup']:6.2f}x with "
        f"workers={grid['workers']} ({grid_mode}, "
        f"identical={grid['grids_identical']})"
    )
    print(
        f"monte carlo     {mc['parallel_speedup']:6.2f}x with "
        f"workers={mc['workers']} "
        f"(identical={mc['distributions_identical']})"
    )
    print(
        f"interpreter     {interp['speedup']:6.2f}x  "
        f"({interp['reference_instructions_per_s']:.0f} -> "
        f"{interp['fast_instructions_per_s']:.0f} instr/s on "
        f"{interp['workload']}-like, "
        f"identical={interp['state_identical']})"
    )
    print(
        f"profiler        {prof['speedup']:6.2f}x  "
        f"({prof['reference_instructions_per_s']:.0f} -> "
        f"{prof['fast_instructions_per_s']:.0f} instr/s profiled, "
        f"identical={prof['profiles_identical']})"
    )
    print(
        f"variation       {var['speedup']:6.2f}x  "
        f"(delay {var['delay_speedup']:.2f}x, "
        f"leakage {var['leakage_speedup']:.2f}x over "
        f"{var['samples']} samples, identical={var['identical']})"
    )
    print(
        f"contour refine  {contour['speedup']:6.2f}x  "
        f"({contour['points_evaluated']}/{contour['uniform_points']} points "
        f"= {contour['coverage']:.0%} of the uniform grid, "
        f"identical={contour['identical']}, "
        f"contour_match={contour['contour_match']})"
    )
    print(
        f"yield optimum   {yld['statistical_seconds'] / yld['nominal_seconds']:6.2f}x nominal cost  "
        f"(guard band {yld['guard_band_v'] * 1000:.0f} mV at p{yld['percentile']:g} "
        f"over {yld['samples']} samples, "
        f"identical={yld['identical']})"
    )
    print(
        f"scheduler       {sched['worker_runs']['2']['speedup_vs_serial']:6.2f}x with 2 workers "
        f"({sched['worker_runs']['1']['speedup_vs_serial']:.2f}x with 1, "
        f"scaling {sched['scaling_2w_over_1w']:.2f}x over "
        f"{sched['items']} items, identical={sched['identical']})"
    )
    print(
        f"energy surface  {surf['speedup']:6.2f}x  "
        f"({surf['reference_cells_per_s']:.0f} -> "
        f"{surf['planned_cells_per_s']:.0f} cells/s over a "
        f"{surf['grid'][0]}x{surf['grid'][1]} (V_T, V_DD) grid, "
        f"identical={surf['identical']})"
    )
    n_counters = len(results["observability"]["counters"])
    n_timers = len(results["observability"]["timers"])
    print(
        f"observability   {n_counters} counters, {n_timers} timers "
        "recorded from the instrumented pass"
    )

    ok = (
        sim["reports_identical"]
        and opt["points_identical"]
        and grid["grids_identical"]
        and mc["distributions_identical"]
        and interp["state_identical"]
        and prof["profiles_identical"]
        and var["identical"]
        and contour["identical"]
        and contour["contour_match"]
        and yld["identical"]
        and sched["identical"]
        and surf["identical"]
    )
    if not ok:
        print("ERROR: fast/parallel paths diverged from reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
