"""Ablation — the short-circuit component across the supply axis.

Section 2 of the paper makes two claims about crowbar current: with
matched input/output edge rates it stays below ~10 % of total power,
and it vanishes entirely once ``V_DD < V_Tn + |V_Tp|`` (both devices
can never conduct at once).  This bench sweeps the supply on the 8-bit
adder and reports the measured component split.
"""

from repro.analysis.tables import format_table
from repro.circuits.builders import ripple_carry_adder
from repro.device.technology import soi_low_vt
from repro.power.estimator import PowerEstimator
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import random_bus_vectors

SUPPLIES = (0.3, 0.45, 0.7, 1.0, 1.5, 2.0)
FREQUENCY = 1e8  # clocked near capability: switching-dominated regime
VECTORS = 120


def generate_ablation():
    technology = soi_low_vt()  # V_Tn = V_Tp = 0.184 V
    adder = ripple_carry_adder(8)
    estimator = PowerEstimator(adder, technology)
    overlap_floor = (
        technology.transistors.nmos.vt0 + technology.transistors.pmos.vt0
    )
    rows = []
    for vdd in SUPPLIES:
        stimulus = random_bus_vectors({"a": 8, "b": 8}, VECTORS, seed=1996)
        report = SwitchLevelSimulator(
            adder, technology, vdd
        ).run_vectors(stimulus)
        breakdown = estimator.breakdown(report, vdd, FREQUENCY)
        rows.append(
            [
                vdd,
                breakdown.switching_w,
                breakdown.short_circuit_w,
                breakdown.leakage_w,
                breakdown.fraction("short_circuit"),
            ]
        )
    return overlap_floor, rows


def test_ablation_short_circuit(benchmark, record):
    overlap_floor, rows = benchmark(generate_ablation)

    # Claim 1: the paper's <10 % bound holds at every supply with
    # matched edges.
    for row in rows:
        assert row[4] < 0.10, row

    # Claim 2: exactly zero below the overlap floor (V_Tn + V_Tp).
    for row in rows:
        if row[0] < overlap_floor:
            assert row[2] == 0.0, row
    assert rows[0][0] < overlap_floor  # the sweep actually covers it

    # The component grows with overlap: larger at 2 V than at 0.7 V.
    above = [row for row in rows if row[0] >= overlap_floor * 1.5]
    assert above[-1][2] > above[0][2]

    record(
        "ablation_short_circuit",
        format_table(
            ["V_DD [V]", "P_sw [W]", "P_sc [W]", "P_leak [W]",
             "sc fraction"],
            rows,
            title=(
                "Ablation: short-circuit component, 8-bit adder at "
                f"{FREQUENCY:g} Hz (overlap floor = "
                f"{overlap_floor:.3f} V)"
            ),
        ),
    )
