"""Table 2 — profiling the li-like list-interpreter workload.

Paper shape: li chases cons cells — very high adder activity (pointer
arithmetic, loads/stores, eq tests), negligible shifting, zero
multiplications.
"""

from repro.analysis.tables import format_table
from repro.isa.profiler import profile_program
from repro.isa.workloads import li_like

UNITS = ("adder", "shifter", "multiplier")


def generate_table2():
    program = li_like.build_program(n=64, n_lookups=40)
    return profile_program(program)


def test_table2_li(benchmark, record):
    profile = benchmark(generate_table2)

    # Shape criteria (Table 2 signature).
    assert profile.fga("adder") > 0.6
    assert profile.fga("shifter") == 0.0
    assert profile.fga("multiplier") == 0.0
    assert profile.bga("adder") < 0.5 * profile.fga("adder")

    rows = [["(total instructions)", profile.total_instructions, "", ""]]
    for unit in UNITS:
        stats = profile.stats(unit)
        rows.append([unit, stats.uses, stats.fga, stats.bga])
    record(
        "table2_li",
        format_table(
            ["unit", "number", "fga", "bga"],
            rows,
            title="Table 2: profiling results, li-like kernel",
        ),
    )
