"""Fig. 4 — energy vs V_T at fixed throughput; the optimum (V_DD, V_T).

Paper shape: along a fixed-performance locus the energy is U-shaped in
V_T — supply (and switching energy) falls as V_T falls until leakage
takes over — with the optimum supply "significantly lower than 1 V".
Two throughput classes are swept (the paper's 1 MHz and 0.8 MHz ring
families); lower node activity pushes the optimum V_T higher.
"""

from repro.analysis.tables import format_table
from repro.device.technology import soi_low_vt
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel

VT_SWEEP = [0.04 + 0.02 * i for i in range(20)]  # 0.04 .. 0.42 V


def _optimizer(activity: float) -> FixedThroughputOptimizer:
    ring = RingOscillatorModel(soi_low_vt(), stages=101, activity=activity)
    # Leakage integrates over the ring's own period (the paper's 1 MHz
    # oscillator dissipates leakage continuously at that rate).
    return FixedThroughputOptimizer(ring, cycle_stages=202)


def generate_fig4():
    """Fixed-delay energy curves for two speed classes + an activity ablation."""
    optimizer = _optimizer(activity=1.0)
    reference = optimizer.ring.stage_delay(1.0, 0.2)
    curves = {}
    optima = {}
    for label, target in (
        ("1.0x rate", 4.0 * reference),
        ("0.8x rate", 5.0 * reference),
    ):
        points = optimizer.sweep(VT_SWEEP, target)
        curves[label] = points
        optima[label] = optimizer.optimum(target, vt_bounds=(0.02, 0.45))
    low_activity = _optimizer(activity=0.1)
    optima["low-activity"] = low_activity.optimum(
        4.0 * reference, vt_bounds=(0.02, 0.45)
    )
    return curves, optima


def test_fig4_optimum_vt(benchmark, record):
    curves, optima = benchmark(generate_fig4)

    # Shape 1: the energy-vs-V_T locus is U-shaped (interior minimum).
    for label, points in curves.items():
        energies = [p.energy_per_cycle_j for p in points]
        best = min(range(len(energies)), key=energies.__getitem__)
        assert 0 < best < len(energies) - 1, (label, best)

    # Shape 2: optimum supply is well below 1 V for both classes.
    for label in ("1.0x rate", "0.8x rate"):
        assert optima[label].vdd < 1.0, label

    # Shape 3: the slower class reaches a lower-energy optimum.
    assert (
        optima["0.8x rate"].energy_per_cycle_j
        < optima["1.0x rate"].energy_per_cycle_j
    )

    # Shape 4 (paper text): low switching activity pushes the optimum
    # threshold up.
    assert optima["low-activity"].vt > optima["1.0x rate"].vt

    rows = []
    for label, points in curves.items():
        for p in points:
            rows.append(
                [label, p.vt, p.vdd, p.energy_per_cycle_j,
                 p.leakage_fraction]
            )
    summary = [
        [label, o.vt, o.vdd, o.energy_per_cycle_j]
        for label, o in optima.items()
    ]
    record(
        "fig4_optimum_vt",
        format_table(
            ["class", "V_T [V]", "V_DD [V]", "E/cycle [J]", "leak frac"],
            rows,
            title="Fig. 4: energy vs V_T at fixed throughput",
        )
        + "\n\n"
        + format_table(
            ["class", "V_T* [V]", "V_DD* [V]", "E* [J]"],
            summary,
            title="Fig. 4 optima",
        ),
    )
