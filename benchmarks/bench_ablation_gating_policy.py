"""Ablation — power-down hysteresis on the V_T control.

The paper's bga charges a back-gate toggle at every use-run boundary.
A keep-alive policy (stay at low V_T through idle gaps up to K cycles)
trades extra low-V_T leakage for fewer toggles.  This bench sweeps K
for the adder under the espresso-like workload and reports the energy
balance — showing an interior optimum when toggles are expensive.
"""

from repro.analysis.tables import format_table
from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import standard_datapath
from repro.isa.machine import Machine
from repro.isa.policy import UnitTraceRecorder
from repro.isa.workloads import espresso_like
from repro.power.energy import e_soias_gated

THRESHOLDS = (0, 1, 2, 4, 8, 16, 64, 256)
UNIT = "adder"


def generate_ablation():
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    unit = standard_datapath(width=8, stimulus_vectors=80)[UNIT]
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)

    program = espresso_like.build_program(48, 10)
    machine = Machine(program)
    recorder = UnitTraceRecorder()
    machine.add_hook(recorder)
    machine.run()

    rows = []
    for threshold in THRESHOLDS:
        stats = recorder.gated_stats(UNIT, idle_threshold=threshold)
        energy = e_soias_gated(
            module,
            stats.use_fraction,
            stats.powered_fraction,
            stats.bga,
            flow.vdd,
            flow.t_cycle_s,
        )
        rows.append((threshold, stats, energy))
    return module, rows


def test_ablation_gating_policy(benchmark, record):
    module, rows = benchmark(generate_ablation)

    # Monotone mechanics: hysteresis can only lower bga and raise the
    # powered fraction.
    bgas = [stats.bga for _, stats, _ in rows]
    powered = [stats.powered_fraction for _, stats, _ in rows]
    assert bgas == sorted(bgas, reverse=True)
    assert powered == sorted(powered)

    # The use fraction is policy-invariant.
    uses = {round(stats.use_fraction, 12) for _, stats, _ in rows}
    assert len(uses) == 1

    # The trade is real: the extremes differ in energy and some
    # intermediate policy is at least as good as immediate gating.
    energies = [energy for _, _, energy in rows]
    assert min(energies) <= energies[0]

    record(
        "ablation_gating_policy",
        format_table(
            [
                "idle threshold K",
                "powered fraction",
                "bga",
                "E_SOIAS(gated) [J]",
            ],
            [
                [threshold, stats.powered_fraction, stats.bga, energy]
                for threshold, stats, energy in rows
            ],
            title=(
                "Ablation: V_T-control hysteresis, adder module under "
                "the espresso-like workload (1 MHz, V_DD = 1 V)"
            ),
        ),
    )
