#!/usr/bin/env python
"""Characterize a cell library and serialize it liberty-style.

The paper argues low-voltage CAD needs pre-characterized abstractions
that keep both the non-linear C(V_DD) and subthreshold leakage.  This
example:

1. characterizes the standard-cell catalog over a (V_DD, V_T-shift)
   corner grid for the SOIAS process,
2. prints a few corners showing the leakage/delay trade the back gate
   buys,
3. writes the library to JSON and reloads it lookup-only — the way a
   downstream power tool would consume it.

Run:  python examples/cell_library_characterization.py
"""

import os
import tempfile

from repro import CellLibrary, format_table, soias_technology


def main():
    technology = soias_technology()
    active_shift = technology.back_gate.vt_shift_at(3.0)

    print("Characterizing the cell catalog for", technology.name, "...")
    library = CellLibrary.characterized(
        technology,
        vdd_grid=[0.5, 0.8, 1.0, 1.5],
        vt_shift_grid=[active_shift, 0.0],
        load_f=10e-15,
    )

    rows = []
    for cell_name in ("INV", "NAND2", "XOR2", "MUX2"):
        for mode, shift in (("active", active_shift), ("standby", 0.0)):
            corner = library.lookup(cell_name, 1.0, shift)
            rows.append(
                [
                    cell_name,
                    mode,
                    corner.delay_s,
                    corner.energy_per_transition_j,
                    corner.leakage_current_a,
                ]
            )
    print(
        format_table(
            ["cell", "back-gate mode", "delay [s]", "E/transition [J]",
             "leakage [A]"],
            rows,
            title="SOIAS corners at V_DD = 1 V (load 10 fF)",
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "soias.lib.json")
        library.save(path)
        size_kb = os.path.getsize(path) / 1024.0
        loaded = CellLibrary.load(path)
        check = loaded.lookup("NAND2", 0.9, 0.0)
        print(
            f"\nSerialized to {path} ({size_kb:.1f} KiB); reloaded "
            f"lookup-only, NAND2 @ 0.9 V interpolates to "
            f"{check.delay_s:.3e} s / {check.leakage_current_a:.3e} A."
        )

    active = library.lookup("INV", 1.0, active_shift)
    standby = library.lookup("INV", 1.0, 0.0)
    print(
        f"\nThe back-gate trade on one inverter: active mode is "
        f"{standby.delay_s / active.delay_s:.2f}x faster, standby mode "
        f"leaks {active.leakage_current_a / standby.leakage_current_a:.0f}x "
        "less — the knob Sections 4-5 of the paper are about."
    )


if __name__ == "__main__":
    main()
