#!/usr/bin/env python
"""Switch-level activity estimation (the IRSIM-style tool, Figs. 8-9).

Shows how signal statistics drive node transition activity — and hence
switching power — on the same 8-bit ripple adder:

* uniform random operands (Fig. 8),
* one operand fixed, the other counting (Fig. 9),
* gray-coded inputs (minimum-change stimulus),
* biased random bits (sparse data).

Also prints the glitch tail: static-CMOS carry ripples make some sum
nodes transition more than once per input vector.

Run:  python examples/activity_estimation.py
"""

from repro import (
    SwitchLevelSimulator,
    counting_bus_vectors,
    format_table,
    gray_code_bus_vectors,
    random_bus_vectors,
    ripple_carry_adder,
    soi_low_vt,
)

VECTORS = 400
VDD = 1.0


def main():
    adder = ripple_carry_adder(8)
    technology = soi_low_vt()

    stimuli = {
        "random (Fig. 8)": random_bus_vectors(
            {"a": 8, "b": 8}, VECTORS, seed=0
        ),
        "counting, a fixed (Fig. 9)": counting_bus_vectors(
            "b", 8, VECTORS, fixed_buses={"a": 85}, fixed_widths={"a": 8}
        ),
        "gray-coded b, a fixed": gray_code_bus_vectors(
            "b", 8, VECTORS, fixed_buses={"a": 85}, fixed_widths={"a": 8}
        ),
        "sparse random (p1 = 0.1)": random_bus_vectors(
            {"a": 8, "b": 8}, VECTORS, seed=0, one_probability=0.1
        ),
    }

    rows = []
    reports = {}
    for label, vectors in stimuli.items():
        simulator = SwitchLevelSimulator(adder, technology, VDD)
        report = simulator.run_vectors(vectors)
        reports[label] = report
        energy = report.switching_energy_per_cycle(adder, technology, VDD)
        glitchy = sum(
            1
            for net in report.internal_nets()
            if report.transition_probability(net) > 1.0
        )
        rows.append(
            [label, report.mean_activity(), energy, glitchy]
        )
    print(
        format_table(
            ["stimulus", "mean activity", "E_sw/cycle [J]", "glitchy nodes"],
            rows,
            title="Signal statistics vs switching energy (8-bit adder)",
        )
    )

    print("\nHistogram, random stimulus (paper Fig. 8):")
    edges, counts = reports["random (Fig. 8)"].histogram(bins=10)
    width = max(counts) or 1
    for i, count in enumerate(counts):
        bar = "#" * round(40 * count / width)
        print(f"  {edges[i]:6.3f}-{edges[i + 1]:6.3f}  {count:4d}  {bar}")

    print("\nHistogram, correlated stimulus (paper Fig. 9, same axis):")
    _, counts9 = reports["counting, a fixed (Fig. 9)"].histogram(
        bins=10, max_probability=edges[-1]
    )
    for i, count in enumerate(counts9):
        bar = "#" * round(40 * count / width)
        print(f"  {edges[i]:6.3f}-{edges[i + 1]:6.3f}  {count:4d}  {bar}")


if __name__ == "__main__":
    main()
