#!/usr/bin/env python
"""Bring your own design: a .rnet netlist through the whole flow.

Loads the 4-bit accumulator in ``examples/custom_netlist.rnet``
(written by hand in the structural format of docs/netlist-format.md)
and runs it through every stage a user's own design would see:

1. clocked functional check,
2. static timing (register-aware) and the supported clock rate,
3. switch-level activity and the Section 2 power breakdown,
4. dual-V_T + gate-sizing power recovery.

Run:  python examples/custom_netlist.py
"""

import pathlib
import random

from repro import (
    PowerEstimator,
    StaticTimingAnalyzer,
    SwitchLevelSimulator,
    format_table,
    soi_low_vt,
)
from repro.circuits.io import load_netlist
from repro.power.dualvt import DualVtOptimizer
from repro.power.sizing import GateSizingOptimizer

RNET = pathlib.Path(__file__).parent / "custom_netlist.rnet"
VDD = 1.0


def main():
    technology = soi_low_vt()
    netlist = load_netlist(str(RNET))
    print(f"Loaded {netlist!r} from {RNET.name}")

    # 1. Functional check: accumulate 3, five times.
    vectors = [
        {f"a[{i}]": (3 >> i) & 1 for i in range(4)} for _ in range(6)
    ]
    history = netlist.evaluate_sequence(vectors)
    totals = [
        sum(cycle[f"q[{i}]"] << i for i in range(4)) for cycle in history
    ]
    print(f"Accumulating 3/cycle: q = {totals} (wraps mod 16)")
    assert totals == [0, 3, 6, 9, 12, 15]

    # 2. Timing.
    analyzer = StaticTimingAnalyzer(technology)
    cycle = analyzer.min_cycle_time(netlist, VDD)
    print(
        f"Critical path {analyzer.analyze(netlist, VDD).delay_s:.3e} s -> "
        f"max clock {1.0 / cycle / 1e6:.0f} MHz at {VDD} V"
    )

    # 3. Activity + power at 1 MHz.
    rng = random.Random(0)
    stimulus = [
        {f"a[{i}]": rng.randint(0, 1) for i in range(4)}
        for _ in range(200)
    ]
    simulator = SwitchLevelSimulator(netlist, technology, VDD)
    report = simulator.run_clocked(stimulus)
    breakdown = PowerEstimator(netlist, technology).breakdown(
        report, VDD, 1e6
    )
    print(
        format_table(
            ["component", "power [W]", "fraction"],
            [
                [name, getattr(breakdown, f"{name}_w"),
                 breakdown.fraction(name)]
                for name in ("switching", "short_circuit", "leakage")
            ],
            title="Power breakdown at 1 MHz (random input stream)",
        )
    )

    # 4. Recovery passes.
    dualvt = DualVtOptimizer(netlist, technology, VDD).optimize(1.0)
    sized = GateSizingOptimizer(netlist, technology, VDD).optimize(1.0)
    print(
        f"\nRecovery at zero delay budget: dual-V_T moves "
        f"{len(dualvt.high_vt_gates)}/{dualvt.total_gates} gates high "
        f"(leakage /{dualvt.leakage_reduction:.1f}); sizing shrinks "
        f"{sized.downsized_gates} gates (capacitance "
        f"/{sized.capacitance_reduction:.2f})."
    )


if __name__ == "__main__":
    main()
