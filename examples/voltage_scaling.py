#!/usr/bin/env python
"""Voltage/threshold co-optimization for continuous operation.

Reproduces the Section 3 exploration (paper Figs. 3-4) interactively:

1. Sweep V_T at a fixed performance target, solving the V_DD that
   keeps a 101-stage ring oscillator at constant speed (Fig. 3).
2. Show the resulting energy-per-cycle locus and its interior optimum
   — the point where further threshold reduction loses to leakage
   (Fig. 4).
3. Quantify the activity effect: idle-ish logic wants a higher V_T.
4. Compare against the 3.3 V bulk-CMOS baseline the paper's intro
   starts from.

Run:  python examples/voltage_scaling.py
"""

from repro import (
    FixedThroughputOptimizer,
    RingOscillatorModel,
    bulk_cmos_06um,
    format_table,
    soi_low_vt,
)


def main():
    technology = soi_low_vt()
    ring = RingOscillatorModel(technology, stages=101)
    optimizer = FixedThroughputOptimizer(ring, cycle_stages=202)

    target = 4.0 * ring.stage_delay(1.0, 0.2)
    print(f"Performance target: {target:.3e} s per stage "
          f"({1.0 / (202 * target) / 1e6:.2f} MHz ring)\n")

    vts = [0.05 + 0.025 * i for i in range(15)]
    points = optimizer.sweep(vts, target)
    print(
        format_table(
            ["V_T [V]", "V_DD [V]", "E/cycle [J]", "leakage fraction"],
            [
                [p.vt, p.vdd, p.energy_per_cycle_j, p.leakage_fraction]
                for p in points
            ],
            title="Fixed-delay locus (paper Figs. 3-4)",
        )
    )

    best = optimizer.optimum(target, vt_bounds=(0.02, 0.45))
    print(
        f"\nOptimum: V_T = {best.vt:.3f} V, V_DD = {best.vdd:.3f} V, "
        f"E = {best.energy_per_cycle_j:.3e} J/cycle "
        f"(leakage {100 * best.leakage_fraction:.1f}%)"
    )

    # Activity ablation: the paper's "low switching activity requires
    # a high threshold".
    rows = []
    for activity in (1.0, 0.5, 0.2, 0.05):
        quiet = FixedThroughputOptimizer(
            RingOscillatorModel(technology, stages=101, activity=activity),
            cycle_stages=202,
        ).optimum(target, vt_bounds=(0.02, 0.45))
        rows.append([activity, quiet.vt, quiet.vdd])
    print(
        "\n"
        + format_table(
            ["node activity", "optimal V_T [V]", "optimal V_DD [V]"],
            rows,
            title="Activity drives the optimal threshold upward",
        )
    )

    # Against the 3 V bulk baseline.
    bulk = bulk_cmos_06um()
    bulk_ring = RingOscillatorModel(bulk, stages=101)
    bulk_point = bulk_ring.energy_per_cycle(
        bulk.nominal_vdd, bulk.transistors.nmos.vt0, 202 * target
    )
    saving = 1.0 - best.energy_per_cycle_j / bulk_point.energy_per_cycle_j
    print(
        f"\nVs conventional bulk at {bulk.nominal_vdd} V: "
        f"{bulk_point.energy_per_cycle_j:.3e} J/cycle -> optimized "
        f"low-voltage point saves {100 * saving:.1f}% "
        "(the paper's headline motivation)."
    )


if __name__ == "__main__":
    main()
