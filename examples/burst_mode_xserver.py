#!/usr/bin/env python
"""Burst-mode technology shoot-out for an event-driven system.

Reproduces the Section 5.4 X-server analysis end to end, and extends
it with the two other Section 4 technologies:

1. Profile a whole interactive "session" (espresso-like + li-like +
   IDEA back to back) for per-unit fga/bga.
2. Simulate the adder, shifter and multiplier switch-level for
   alpha * C_fg.
3. Evaluate SOIAS (back-gated), MTCMOS (sleep transistors) and VTCMOS
   (substrate bias) against the fixed-low-V_T SOI baseline at several
   system duty cycles.

Run:  python examples/burst_mode_xserver.py
"""

import functools

from repro import (
    LowVoltageDesignFlow,
    format_table,
    profile_program,
    standard_datapath,
)
from repro.isa.workloads import espresso_like, idea, li_like


def main():
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    datapath = standard_datapath(width=8, stimulus_vectors=100)

    print("Profiling the session workloads (espresso + li + IDEA)...")
    session = functools.reduce(
        lambda a, b: a.merged_with(b),
        [
            profile_program(espresso_like.build_program(48, 10)),
            profile_program(li_like.build_program(64, 40)),
            profile_program(idea.build_program(idea.random_blocks(8))),
        ],
    )
    print(
        format_table(
            ["unit", "fga", "bga", "mean run length"],
            [
                [
                    unit,
                    session.fga(unit),
                    session.bga(unit),
                    session.stats(unit).mean_run_length,
                ]
                for unit in ("adder", "shifter", "multiplier")
            ],
            title=f"Session profile ({session.total_instructions} instructions)",
        )
    )

    print("\nExtracting module electrical parameters (switch-level sim)...")
    modules = {}
    for name, unit in datapath.items():
        report = flow.unit_activity(unit.netlist, unit.vectors)
        modules[name] = flow.module_parameters(unit.netlist, report)

    for duty, label in ((1.0, "continuous"), (0.5, "50% duty"),
                        (0.2, "x-server 20% duty"), (0.05, "5% duty")):
        scaled = session.scaled_by_duty_cycle(duty)
        rows = []
        for name in ("adder", "shifter", "multiplier"):
            comparator = flow.comparator(modules[name])
            verdicts = comparator.all_verdicts(
                scaled.fga(name), scaled.bga(name)
            )
            rows.append(
                [
                    name,
                    verdicts["soias"].saving_percent,
                    verdicts["mtcmos"].saving_percent,
                    verdicts["vtcmos"].saving_percent,
                ]
            )
        print(
            "\n"
            + format_table(
                ["unit", "SOIAS saving %", "MTCMOS saving %",
                 "VTCMOS saving %"],
                rows,
                title=f"Scenario: {label}",
            )
        )

    print(
        "\nPaper reference (X-server, SOIAS): 43% adder, 81% shifter, "
        "97% multiplier.\nNote VTCMOS trails — the square-root body "
        "effect forces a large well swing, the caveat the paper raises."
    )


if __name__ == "__main__":
    main()
