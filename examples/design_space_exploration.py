#!/usr/bin/env python
"""Design-space exploration: Pareto fronts, EDP, and real stimulus.

Three exploration tools built on top of the paper's machinery:

1. **Energy-delay Pareto front** over the (V_DD, V_T) grid — the full
   plane the paper's Figs. 3-4 slice along fixed-delay loci — plus the
   minimum-EDP point.
2. **Variation awareness** — how much supply guard-band a 30 mV V_T
   sigma demands at the 99th percentile.
3. **Workload-true stimulus** — replay the multiplier operands the
   IDEA cipher actually produced and compare against the random
   vectors most flows use.

Run:  python examples/design_space_exploration.py
"""

from repro import (
    array_multiplier,
    format_table,
    random_bus_vectors,
    soi_low_vt,
    standard_cells,
    Machine,
    SwitchLevelSimulator,
)
from repro.analysis.pareto import EnergyDelayExplorer
from repro.analysis.variation import MonteCarloAnalyzer
from repro.isa.operands import OperandTraceRecorder
from repro.isa.workloads import idea
from repro.tech.characterize import CellCharacterizer


def pareto_study(technology):
    explorer = EnergyDelayExplorer(technology, stages=31)
    vdds = [0.2 + 0.1 * i for i in range(11)]
    vts = [0.05 + 0.05 * i for i in range(7)]
    front = explorer.front(vdds, vts)
    print(
        format_table(
            ["V_DD [V]", "V_T [V]", "delay [s]", "E/op [J]", "EDP [J*s]"],
            [
                [p.vdd, p.vt, p.delay_s, p.energy_j,
                 p.energy_delay_product]
                for p in front
            ],
            title=(
                f"Energy-delay Pareto front "
                f"({len(vdds) * len(vts)} grid points -> {len(front)} "
                "non-dominated)"
            ),
        )
    )
    best = explorer.minimum_edp_point(vdds, vts)
    print(
        f"\nMinimum EDP: V_DD = {best.vdd:.2f} V, V_T = {best.vt:.2f} V "
        f"(EDP = {best.energy_delay_product:.3e} J*s)"
    )


def variation_study(technology):
    inverter = standard_cells()["INV"]
    analyzer = MonteCarloAnalyzer(
        technology, vt_sigma=0.03, n_samples=250, seed=9
    )
    nominal = CellCharacterizer(technology)
    target = nominal.propagation_delay(inverter, 0.6, 10e-15)
    guarded = analyzer.timing_yield_vdd(inverter, target, percentile=99.0)
    print(
        f"\nVariation: meeting the nominal 0.6 V delay at the 99th "
        f"percentile (sigma_VT = 30 mV) needs V_DD = {guarded:.3f} V."
    )


def stimulus_study(technology):
    machine = Machine(idea.build_program(idea.random_blocks(8)))
    recorder = OperandTraceRecorder(machine)
    machine.run()
    netlist = array_multiplier(8)
    traced = SwitchLevelSimulator(netlist, technology, 1.0).run_vectors(
        recorder.stimulus("multiplier", {"a": 8, "b": 8}, limit=120)
    )
    uniform = SwitchLevelSimulator(netlist, technology, 1.0).run_vectors(
        random_bus_vectors({"a": 8, "b": 8}, 120, seed=0)
    )
    ratio = uniform.switching_energy_per_cycle(
        netlist, technology, 1.0
    ) / traced.switching_energy_per_cycle(netlist, technology, 1.0)
    print(
        f"\nSignal statistics: IDEA's real multiplier operands switch "
        f"{ratio:.1f}x less energy than uniform random stimulus — the "
        "estimate most flows would report is that far off."
    )


def main():
    technology = soi_low_vt()
    pareto_study(technology)
    variation_study(technology)
    stimulus_study(technology)


if __name__ == "__main__":
    main()
