#!/usr/bin/env python
"""Quickstart: the full low-voltage flow in ~40 lines.

Profiles the IDEA cipher on the bundled RISC ISA, simulates the three
datapath units switch-level, and asks the paper's question: does a
dynamically variable-threshold (SOIAS) process beat fixed low-V_T SOI
for this application — continuously active, and as a 20 %-duty
X-server-style system?

Run:  python examples/quickstart.py
"""

from repro import (
    LowVoltageDesignFlow,
    format_table,
    standard_datapath,
    xserver_scenario,
)
from repro.isa.workloads import idea


def main():
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    program = idea.build_program(idea.random_blocks(8, seed=7))
    datapath = standard_datapath(width=8, stimulus_vectors=100)

    print("Profiling IDEA on the bundled RISC ISA...")
    rows = []
    for scenario_duty, scenario_name in (
        (1.0, "continuous"),
        (xserver_scenario().duty_cycle, "x-server (20% duty)"),
    ):
        result = flow.evaluate(program, datapath, duty_cycle=scenario_duty)
        for unit_name, evaluation in result.units.items():
            verdict = evaluation.verdicts["soias"]
            rows.append(
                [
                    scenario_name,
                    unit_name,
                    evaluation.fga,
                    evaluation.bga,
                    verdict.saving_percent,
                    verdict.wins,
                ]
            )
    print(
        format_table(
            ["scenario", "unit", "fga", "bga", "SOIAS saving %", "wins"],
            rows,
            title="SOIAS vs fixed-low-V_T SOI (paper Fig. 10 question)",
        )
    )
    print(
        "\nReading: back-gated V_T control pays off exactly where the "
        "paper says it does —\nrarely-used blocks in mostly-idle "
        "systems; a continuously busy adder gains little."
    )


if __name__ == "__main__":
    main()
