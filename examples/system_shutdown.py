#!/usr/bin/env python
"""Event-driven system shutdown and the static limits of scaling.

Two system-level questions around the paper's Section 4:

1. **How much does shutdown buy?**  Evaluate timeout / predictive /
   oracle shutdown policies on a synthetic X-session trace, with state
   powers drawn from the SOIAS module model (active, idle-at-low-V_T,
   off-at-high-V_T).
2. **How low can the supply go at all?**  Sweep the inverter VTC down
   the supply axis and find the noise-margin floor — the regeneration
   limit sitting near a few n*kT/q, far below the paper's ~1 V
   operating points.

Run:  python examples/system_shutdown.py
"""

from repro import (
    InverterDcAnalysis,
    LowVoltageDesignFlow,
    format_table,
    soi_low_vt,
    standard_datapath,
)
from repro.core.shutdown import (
    OraclePolicy,
    PredictivePolicy,
    ShutdownCosts,
    TimeoutPolicy,
    evaluate_policy,
    synthetic_session_trace,
)


def shutdown_study():
    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    unit = standard_datapath(width=8, stimulus_vectors=60)["adder"]
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)

    costs = ShutdownCosts(
        active_power_w=(
            module.switched_capacitance_f / flow.t_cycle_s
            + module.leakage_low_vt_a
        ),
        idle_power_w=module.leakage_low_vt_a,
        off_power_w=module.leakage_high_vt_a,
        wakeup_energy_j=(
            module.back_gate_capacitance_f * module.back_gate_swing_v**2
        ),
        wakeup_latency_cycles=2,
        cycle_time_s=flow.t_cycle_s,
    )
    trace = synthetic_session_trace(n_periods=400, seed=11)
    breakeven = costs.breakeven_cycles
    policies = [
        ("always-on", TimeoutPolicy(10**12)),
        ("timeout @ break-even", TimeoutPolicy(max(int(breakeven), 1))),
        ("predictive", PredictivePolicy(breakeven)),
        ("oracle", OraclePolicy(breakeven)),
    ]
    rows = []
    for name, policy in policies:
        result = evaluate_policy(trace, policy, costs, name)
        rows.append(
            [
                name,
                result.energy_j,
                100.0 * result.saving_vs_always_on,
                result.off_fraction,
                result.wakeups,
            ]
        )
    print(
        format_table(
            ["policy", "energy [J]", "saving %", "off fraction", "wakeups"],
            rows,
            title=(
                "Shutdown policies on an X-session trace "
                f"(break-even idle = {breakeven:.0f} cycles)"
            ),
        )
    )


def minimum_supply_study():
    dc = InverterDcAnalysis(soi_low_vt())
    rows = []
    for vdd in (1.0, 0.5, 0.3, 0.2, 0.12, 0.08):
        margins = dc.noise_margins(vdd)
        rows.append(
            [vdd, dc.peak_gain(vdd), margins.low, margins.high,
             margins.worst / vdd]
        )
    print(
        "\n"
        + format_table(
            ["V_DD [V]", "peak gain", "NM_L [V]", "NM_H [V]", "worst/V_DD"],
            rows,
            title="Inverter noise margins down the supply axis",
        )
    )
    floor = dc.minimum_supply(margin_fraction=0.3)
    print(
        f"\nMinimum supply for a 30% worst-margin budget: {floor * 1e3:.0f} mV"
        " — regeneration, not the optimizer, is the last thing to fail."
    )


def main():
    shutdown_study()
    minimum_supply_study()


if __name__ == "__main__":
    main()
